//! The filter engine: list loading and request classification.
//!
//! Classification is pre-filtered: each loaded list compiles a
//! [`Prefilter`] dispatch index, so a request tests only the rules
//! whose indexed 4-gram occurs in the URL (plus the short-pattern
//! `always` set) instead of walking the whole list. The pre-filter is
//! a strict superset filter — zero false negatives by construction
//! (see [`crate::prefilter`]) — and candidates are verified in load
//! order, so decisions are bit-identical to the retained linear
//! reference walk ([`FilterEngine::check_reference`]).

use crate::filter::{parse_line, Filter, ParsedLine, ResourceType};
use crate::is_third_party;
use crate::prefilter::Prefilter;
use appvsweb_httpsim::Host;

/// The request context a classification decision needs.
#[derive(Clone, Debug)]
pub struct RequestInfo<'a> {
    /// Full request URL.
    pub url: &'a str,
    /// The page/app origin host that initiated the request.
    pub origin_host: &'a str,
    /// Resource type, when known.
    pub resource_type: Option<ResourceType>,
}

/// Engine verdict for a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// A blocking rule matched (the rule text is included for reporting).
    Blocked(String),
    /// An exception rule overrode a blocking rule.
    Allowed(String),
    /// No rule matched.
    NoMatch,
}

impl Decision {
    /// Whether the engine classified the request as ad/tracking content.
    pub fn is_blocked(&self) -> bool {
        matches!(self, Decision::Blocked(_))
    }
}

/// Statistics from loading a list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Usable network rules.
    pub network_rules: usize,
    /// Exception rules (subset of `network_rules`).
    pub exceptions: usize,
    /// Comment/metadata lines.
    pub comments: usize,
    /// Element-hiding rules (skipped).
    pub element_hiding: usize,
    /// Unsupported lines (skipped).
    pub unsupported: usize,
}

/// An EasyList-style filter engine.
#[derive(Clone, Debug, Default)]
pub struct FilterEngine {
    blocking: Vec<Filter>,
    exceptions: Vec<Filter>,
    blocking_pre: Prefilter,
    exceptions_pre: Prefilter,
}

impl FilterEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine loaded with the bundled A&A snapshot
    /// ([`crate::lists::BUNDLED_AA_LIST`]).
    pub fn with_bundled_list() -> Self {
        let mut e = FilterEngine::new();
        e.load_list(crate::lists::BUNDLED_AA_LIST);
        e
    }

    /// Load a filter list, returning what was parsed. Recompiles the
    /// pre-filter dispatch indexes over the accumulated rules.
    pub fn load_list(&mut self, text: &str) -> LoadStats {
        let mut stats = LoadStats::default();
        for line in text.lines() {
            match parse_line(line) {
                ParsedLine::Network(f) => {
                    stats.network_rules += 1;
                    if f.exception {
                        stats.exceptions += 1;
                        self.exceptions.push(f);
                    } else {
                        self.blocking.push(f);
                    }
                }
                ParsedLine::Comment => stats.comments += 1,
                ParsedLine::ElementHiding => stats.element_hiding += 1,
                ParsedLine::Unsupported(_) => stats.unsupported += 1,
            }
        }
        self.blocking_pre = Prefilter::build(&self.blocking);
        self.exceptions_pre = Prefilter::build(&self.exceptions);
        stats
    }

    /// Number of loaded rules (blocking + exceptions).
    pub fn rule_count(&self) -> usize {
        self.blocking.len() + self.exceptions.len()
    }

    /// Does `f`'s full rule (options + pattern) match the request?
    /// `url` must already be lowercase.
    fn filter_applies(
        &self,
        f: &Filter,
        url: &str,
        third_party: bool,
        req: &RequestInfo<'_>,
    ) -> bool {
        if let Some(wants_tp) = f.third_party {
            if wants_tp != third_party {
                return false;
            }
        }
        if !f.include_domains.is_empty()
            && !f
                .include_domains
                .iter()
                .any(|d| domain_covers(d, req.origin_host))
        {
            return false;
        }
        if f.exclude_domains
            .iter()
            .any(|d| domain_covers(d, req.origin_host))
        {
            return false;
        }
        if !f.resource_types.is_empty() {
            match req.resource_type {
                Some(rt) if f.resource_types.contains(&rt) => {}
                _ => return false,
            }
        }
        f.pattern_matches(url)
    }

    /// Classify a request. Pre-filtered: only candidate rules whose
    /// indexed gram occurs in the URL are verified, in load order.
    pub fn check(&self, req: &RequestInfo<'_>) -> Decision {
        let url = req.url.to_ascii_lowercase();
        let request_host = host_of(&url);
        let third_party = is_third_party(&request_host, req.origin_host);

        let blocked = self
            .blocking_pre
            .candidates(&url)
            .into_iter()
            .map(|i| &self.blocking[i as usize])
            .find(|f| self.filter_applies(f, &url, third_party, req));
        if let Some(rule) = blocked {
            let exception = self
                .exceptions_pre
                .candidates(&url)
                .into_iter()
                .map(|i| &self.exceptions[i as usize])
                .find(|f| self.filter_applies(f, &url, third_party, req));
            if let Some(exc) = exception {
                return Decision::Allowed(exc.raw.clone());
            }
            return Decision::Blocked(rule.raw.clone());
        }
        Decision::NoMatch
    }

    /// Reference classification: the naive full walk over every rule,
    /// kept alive as the differential oracle for [`FilterEngine::check`].
    #[cfg(any(test, feature = "reference"))]
    pub fn check_reference(&self, req: &RequestInfo<'_>) -> Decision {
        let url = req.url.to_ascii_lowercase();
        let request_host = host_of(&url);
        let third_party = is_third_party(&request_host, req.origin_host);

        let blocked = self
            .blocking
            .iter()
            .find(|f| self.filter_applies(f, &url, third_party, req));
        if let Some(rule) = blocked {
            if let Some(exc) = self
                .exceptions
                .iter()
                .find(|f| self.filter_applies(f, &url, third_party, req))
            {
                return Decision::Allowed(exc.raw.clone());
            }
            return Decision::Blocked(rule.raw.clone());
        }
        Decision::NoMatch
    }

    /// Convenience: does any blocking rule hit this URL for this origin?
    pub fn is_ad_or_tracking(&self, url: &str, origin_host: &str) -> bool {
        self.check(&RequestInfo {
            url,
            origin_host,
            resource_type: None,
        })
        .is_blocked()
    }
}

/// The bundled-list engine, compiled once per process and shared. The
/// list is a static snapshot and the compiled engine is immutable, so
/// per-cell categorizers clone an `Arc` instead of reparsing ~100 rules
/// and rebuilding the dispatch index.
pub fn bundled_shared() -> std::sync::Arc<FilterEngine> {
    use std::sync::{Arc, OnceLock};
    static SHARED: OnceLock<Arc<FilterEngine>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(FilterEngine::with_bundled_list())))
}

/// Extract the hostname from a lowercase URL string.
fn host_of(url: &str) -> String {
    let after = url.split("://").nth(1).unwrap_or(url);
    let end = after.find(['/', '?', ':']).unwrap_or(after.len());
    after[..end].to_string()
}

/// Whether `origin` equals `domain` or is a subdomain of it, using
/// registrable-domain comparison for bare domains.
fn domain_covers(domain: &str, origin: &str) -> bool {
    let origin = origin.to_ascii_lowercase();
    origin == domain
        || origin.ends_with(&format!(".{domain}"))
        || Host::new(&origin).registrable_domain() == domain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rules: &str) -> FilterEngine {
        let mut e = FilterEngine::new();
        e.load_list(rules);
        e
    }

    #[test]
    fn load_stats_counting() {
        let mut e = FilterEngine::new();
        let stats = e.load_list(
            "! title\n[Adblock]\n||a.com^\n@@||b.com^\nexample.com##.ad\n||c.com^$bogus-opt\n",
        );
        assert_eq!(stats.network_rules, 2);
        assert_eq!(stats.exceptions, 1);
        assert_eq!(stats.comments, 2);
        assert_eq!(stats.element_hiding, 1);
        assert_eq!(stats.unsupported, 1);
        assert_eq!(e.rule_count(), 2);
    }

    #[test]
    fn block_and_exception_precedence() {
        let e = engine("||cdn.com^\n@@||cdn.com/whitelisted/*\n");
        assert!(e.is_ad_or_tracking("https://cdn.com/ad.js", "site.com"));
        let d = e.check(&RequestInfo {
            url: "https://cdn.com/whitelisted/lib.js",
            origin_host: "site.com",
            resource_type: None,
        });
        assert!(matches!(d, Decision::Allowed(_)));
    }

    #[test]
    fn third_party_option_enforced() {
        let e = engine("||stats.com^$third-party\n");
        assert!(e.is_ad_or_tracking("https://stats.com/t.gif", "news.com"));
        // Same registrable domain = first party: rule must not fire.
        assert!(!e.is_ad_or_tracking("https://stats.com/t.gif", "www.stats.com"));
    }

    #[test]
    fn domain_option_scopes_rule() {
        let e = engine("||widget.com^$domain=news.com|~tech.news.com\n");
        assert!(e.is_ad_or_tracking("https://widget.com/w.js", "news.com"));
        assert!(e.is_ad_or_tracking("https://widget.com/w.js", "m.news.com"));
        assert!(!e.is_ad_or_tracking("https://widget.com/w.js", "tech.news.com"));
        assert!(!e.is_ad_or_tracking("https://widget.com/w.js", "other.com"));
    }

    #[test]
    fn resource_type_option() {
        let e = engine("||pix.com^$image\n");
        let img = RequestInfo {
            url: "https://pix.com/1.gif",
            origin_host: "a.com",
            resource_type: Some(ResourceType::Image),
        };
        let script = RequestInfo {
            url: "https://pix.com/1.js",
            origin_host: "a.com",
            resource_type: Some(ResourceType::Script),
        };
        let unknown = RequestInfo {
            url: "https://pix.com/1.gif",
            origin_host: "a.com",
            resource_type: None,
        };
        assert!(e.check(&img).is_blocked());
        assert!(!e.check(&script).is_blocked());
        assert!(
            !e.check(&unknown).is_blocked(),
            "typed rules need a typed request"
        );
    }

    #[test]
    fn bundled_list_loads_and_fires() {
        let e = FilterEngine::with_bundled_list();
        assert!(e.rule_count() > 50);
        assert!(e.is_ad_or_tracking(
            "https://www.google-analytics.com/collect?v=1",
            "www.weather.com"
        ));
        assert!(e.is_ad_or_tracking("https://ads.amobee.com/bid", "jetblue.com"));
        assert!(!e.is_ad_or_tracking("https://www.weather.com/today", "www.weather.com"));
    }

    #[test]
    fn prefiltered_check_equals_reference_on_bundled_list() {
        let e = FilterEngine::with_bundled_list();
        let urls = [
            "https://www.google-analytics.com/collect?v=1",
            "https://ads.amobee.com/bid",
            "https://www.weather.com/today",
            "https://securepubads.googlesyndication.com/tag/js/gpt.js",
            "https://cdn.taplytics.com/sdk.min.js",
            "https://api.payments.example/charge",
            "https://x.com/loads/banner.png",
            "https://tracker.example",
        ];
        for url in urls {
            for origin in ["www.weather.com", "jetblue.com", "stats.com"] {
                for rt in [None, Some(ResourceType::Script), Some(ResourceType::Image)] {
                    let req = RequestInfo {
                        url,
                        origin_host: origin,
                        resource_type: rt,
                    };
                    assert_eq!(
                        e.check(&req),
                        e.check_reference(&req),
                        "fast/reference divergence for {url} from {origin}"
                    );
                }
            }
        }
    }

    #[test]
    fn bundled_shared_is_one_engine() {
        let a = bundled_shared();
        let b = bundled_shared();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(
            a.rule_count(),
            FilterEngine::with_bundled_list().rule_count()
        );
    }

    #[test]
    fn no_match_for_clean_requests() {
        let e = engine("||bad.com^\n");
        assert_eq!(
            e.check(&RequestInfo {
                url: "https://good.com/page",
                origin_host: "good.com",
                resource_type: None
            }),
            Decision::NoMatch
        );
    }
}
