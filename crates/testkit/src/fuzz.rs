//! Coverage-guided, corpus-persisting, fully deterministic fuzzing.
//!
//! The engine grows the fixed-seed property harness into a byte-level
//! fuzzer in the libFuzzer/AFL mould, with every source of schedule
//! entropy drawn from the workspace's [`SimRng`] stream:
//!
//! * **Targets** ([`FuzzTarget`]): a totality harness per parser — a
//!   plain `fn(&[u8])` that must not panic on *any* input — plus a
//!   token dictionary and built-in seed inputs. Registration lives with
//!   each parser crate; `appvsweb-bench` collects them for `repro fuzz`.
//! * **Coverage** (`appvsweb-cover`): instrumented parsers bump an
//!   AFL-style edge map; an input that reaches a new edge (or a new
//!   hit-count bucket for a known edge) joins the in-memory corpus and
//!   is reported as a discovery worth committing.
//! * **Mutation** ([`mutate`]): stacked byte-level operators — bit
//!   flips, interesting bytes, chunk deletion/duplication, splicing,
//!   and dictionary insertion — scheduled entirely by a stream forked
//!   per target from `rng_labels::fuzz_target`, so the same seed and
//!   corpus replay the exact same inputs on every machine.
//! * **Minimization**: crash inputs are shrunk through the property
//!   harness's greedy ladder (`prop::shrink` over [`gen::bytes`]), the
//!   same machinery `prop_test!` failures use.
//!
//! Nothing here reads a wall clock; execs/sec reporting lives in the
//! bench crate, which times the deterministic run from outside.

use crate::gen;
use crate::prop::{self, PropConfig};
use appvsweb_netsim::{rng_labels, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;

/// One registered fuzz target: a parser totality harness plus the
/// corpus-seeding material that helps the mutator speak its language.
#[derive(Clone, Copy)]
pub struct FuzzTarget {
    /// Stable target name; keys the corpus directory
    /// (`tests/corpus/<name>/`) and the RNG stream.
    pub name: &'static str,
    /// The harness: must be total (no panic) on arbitrary bytes; any
    /// panic is recorded, minimized, and reported as a crash.
    pub run: fn(&[u8]),
    /// Dictionary tokens (magic numbers, keywords, punctuation) the
    /// mutator splices in verbatim.
    pub dict: &'static [&'static [u8]],
    /// Built-in seed inputs, merged with the on-disk corpus.
    pub seeds: &'static [&'static [u8]],
    /// Cap on generated input length (keeps recursive matchers and
    /// quadratic paths inside the smoke-test budget).
    pub max_len: usize,
}

/// Engine parameters. Everything is deterministic given `seed`, the
/// corpus, and the target code.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Schedule seed; forked per target by name.
    pub seed: u64,
    /// Mutation executions per target (corpus replay is extra).
    pub iters: u64,
    /// Stop collecting after this many distinct crashes per target.
    pub max_crashes: usize,
    /// Cap on shrink steps when minimizing a crash input.
    pub max_shrink_steps: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 2016,
            iters: 2_000,
            max_crashes: 8,
            max_shrink_steps: 512,
        }
    }
}

/// A crash the engine found: the minimized input and the panic message
/// the minimized input produces.
#[derive(Clone, Debug)]
pub struct Crash {
    /// Panic message of the minimized input.
    pub message: String,
    /// Minimized crashing input.
    pub input: Vec<u8>,
    /// Length of the input as originally found, before minimization.
    pub original_len: usize,
}

/// Everything one target's fuzz run produced.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Target name.
    pub target: String,
    /// Total harness executions (corpus replay + mutations).
    pub execs: u64,
    /// Distinct coverage edges reached across the run.
    pub edges: u64,
    /// Corpus entries replayed (on-disk + built-in seeds).
    pub corpus_in: usize,
    /// Corpus entries that crashed during replay (regression failures).
    pub replay_crashes: Vec<Crash>,
    /// Mutated inputs that reached new coverage — candidates for
    /// committing to `tests/corpus/<target>/`.
    pub discoveries: Vec<Vec<u8>>,
    /// Distinct crashes found by mutation, minimized.
    pub crashes: Vec<Crash>,
}

impl FuzzOutcome {
    /// Whether the run surfaced any crash, in replay or mutation.
    pub fn is_clean(&self) -> bool {
        self.replay_crashes.is_empty() && self.crashes.is_empty()
    }
}

/// Hit-count buckets, AFL style: moving to a new bucket for a known
/// edge counts as new coverage, so "loop ran 50 times" and "loop ran
/// once" are distinguishable signals.
fn bucket(count: u32) -> u8 {
    match count {
        0 => 0, // unreachable: nonzero_into never yields zero counts
        1 => 0,
        2 => 1,
        3 => 2,
        4..=7 => 3,
        8..=15 => 4,
        16..=31 => 5,
        32..=127 => 6,
        _ => 7,
    }
}

/// Per-slot bitmask of buckets seen so far.
struct SeenMap {
    bits: Vec<u8>,
}

impl SeenMap {
    fn new() -> Self {
        SeenMap {
            bits: vec![0u8; appvsweb_cover::MAP_SIZE],
        }
    }

    /// Merge a snapshot; true if any (slot, bucket) pair is new.
    fn merge(&mut self, snapshot: &[(u16, u32)]) -> bool {
        let mut new = false;
        for &(slot, count) in snapshot {
            let bit = 1u8 << bucket(count);
            if let Some(slot_bits) = self.bits.get_mut(slot as usize) {
                if *slot_bits & bit == 0 {
                    *slot_bits |= bit;
                    new = true;
                }
            }
        }
        new
    }

    /// Distinct edges (slots) seen at any bucket.
    fn edges(&self) -> u64 {
        self.bits.iter().filter(|&&b| b != 0).count() as u64
    }
}

/// The coverage map and its `PREV` edge state are process-global, so
/// only one fuzz run may drive them at a time.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

enum Exec {
    Ok { new_coverage: bool },
    Crash(String),
}

/// Run the target once under the coverage map and merge the snapshot.
fn execute(
    target: &FuzzTarget,
    input: &[u8],
    scratch: &mut Vec<(u16, u32)>,
    seen: &mut SeenMap,
) -> Exec {
    appvsweb_cover::reset();
    appvsweb_cover::enable();
    let result = catch_unwind(AssertUnwindSafe(|| (target.run)(input)));
    appvsweb_cover::disable();
    scratch.clear();
    appvsweb_cover::nonzero_into(scratch);
    let new_coverage = seen.merge(scratch);
    match result {
        Ok(()) => Exec::Ok { new_coverage },
        Err(payload) => Exec::Crash(prop::panic_message(payload)),
    }
}

/// Minimize a crashing input through the property harness's greedy
/// shrink ladder: any candidate that still crashes the target is taken.
fn minimize(target: &FuzzTarget, input: Vec<u8>, max_steps: u32) -> Crash {
    let original_len = input.len();
    let cfg = PropConfig {
        seed: 0,
        cases: 0,
        max_shrink_steps: max_steps,
    };
    let byte_gen = gen::bytes(0..=input.len());
    let runner = |bytes: &Vec<u8>| (target.run)(bytes);
    let (minimal, _steps) = prop::shrink(&cfg, &byte_gen, &runner, input);
    let message = match catch_unwind(AssertUnwindSafe(|| (target.run)(&minimal))) {
        Ok(()) => "crash did not reproduce after minimization".to_string(),
        Err(payload) => prop::panic_message(payload),
    };
    Crash {
        message,
        input: minimal,
        original_len,
    }
}

/// Fuzz one target: replay the corpus, then mutate for `cfg.iters`
/// executions, tracking coverage and minimizing crashes.
///
/// `corpus` is the committed on-disk corpus (already loaded); built-in
/// target seeds are merged in. Deterministic: same `(seed, corpus,
/// target code)` → same execs, same discoveries, same coverage count.
pub fn fuzz(target: &FuzzTarget, corpus: &[Vec<u8>], cfg: &FuzzConfig) -> FuzzOutcome {
    let _guard = match ENGINE_LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    // Silence the default panic hook for the whole run: crashing inputs
    // are data here, not reportable failures.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = fuzz_locked(target, corpus, cfg);
    std::panic::set_hook(prev_hook);
    outcome
}

fn fuzz_locked(target: &FuzzTarget, corpus: &[Vec<u8>], cfg: &FuzzConfig) -> FuzzOutcome {
    // lint:allow(D3x) parameterized label: registry target names and netsim's local resolver harness are disjoint
    let mut rng = SimRng::new(cfg.seed).fork(&rng_labels::fuzz_target(target.name));
    let mut seen = SeenMap::new();
    let mut scratch: Vec<(u16, u32)> = Vec::new();
    let mut execs = 0u64;

    // Pool: built-in seeds first, then the committed corpus, deduped.
    let mut pool: Vec<Vec<u8>> = Vec::new();
    for seed in target.seeds {
        if !pool.iter().any(|p| p == seed) {
            pool.push(seed.to_vec());
        }
    }
    for entry in corpus {
        if !pool.iter().any(|p| p == entry) {
            pool.push(entry.clone());
        }
    }
    if pool.is_empty() {
        pool.push(Vec::new());
    }
    let corpus_in = pool.len();

    // Phase 1: replay. A crash here means a committed regression input
    // no longer passes — reported separately so CI can fail hard.
    let mut replay_crashes = Vec::new();
    for input in &pool {
        execs += 1;
        if let Exec::Crash(message) = execute(target, input, &mut scratch, &mut seen) {
            replay_crashes.push(Crash {
                message,
                input: input.clone(),
                original_len: input.len(),
            });
        }
    }

    // Phase 2: mutate. Crashes are deduplicated by message before the
    // (expensive) minimization pass.
    let mut discoveries: Vec<Vec<u8>> = Vec::new();
    let mut crashes: Vec<Crash> = Vec::new();
    let mut crash_messages: Vec<String> = Vec::new();
    for _ in 0..cfg.iters {
        let base_idx = rng.below(pool.len() as u64) as usize;
        let other_idx = rng.below(pool.len() as u64) as usize;
        let base = pool.get(base_idx).cloned().unwrap_or_default();
        let other = pool.get(other_idx).cloned().unwrap_or_default();
        let input = mutate(&mut rng, &base, &other, target.dict, target.max_len);
        execs += 1;
        match execute(target, &input, &mut scratch, &mut seen) {
            Exec::Ok { new_coverage } => {
                if new_coverage {
                    discoveries.push(input.clone());
                    pool.push(input);
                }
            }
            Exec::Crash(message) => {
                if crashes.len() < cfg.max_crashes && !crash_messages.contains(&message) {
                    crash_messages.push(message);
                    let crash = minimize(target, input, cfg.max_shrink_steps);
                    if !crash_messages.contains(&crash.message) {
                        crash_messages.push(crash.message.clone());
                    }
                    crashes.push(crash);
                }
            }
        }
    }

    FuzzOutcome {
        target: target.name.to_string(),
        execs,
        edges: seen.edges(),
        corpus_in,
        replay_crashes,
        discoveries,
        crashes,
    }
}

// ------------------------------------------------------------- mutator

/// Bytes worth trying verbatim: boundaries of signed/unsigned widths
/// and the ASCII characters most grammars pivot on.
const INTERESTING: &[u8] = &[
    0x00, 0x01, 0x7f, 0x80, 0xff, b' ', b'"', b'%', b'0', b'9', b'=', b'&', b'\\', b'\n',
];

/// One stacked mutation of `base`. `other` is a second corpus entry for
/// splicing; `dict` supplies grammar tokens. The result is truncated to
/// `max_len`.
pub fn mutate(
    rng: &mut SimRng,
    base: &[u8],
    other: &[u8],
    dict: &[&[u8]],
    max_len: usize,
) -> Vec<u8> {
    let mut out = base.to_vec();
    let ops = 1 + rng.below(3);
    for _ in 0..ops {
        apply_op(rng, &mut out, other, dict);
    }
    if out.len() > max_len {
        out.truncate(max_len);
    }
    out
}

fn apply_op(rng: &mut SimRng, out: &mut Vec<u8>, other: &[u8], dict: &[&[u8]]) {
    // An empty buffer supports only growth operators.
    if out.is_empty() {
        match rng.choose(dict) {
            Some(token) => out.extend_from_slice(token),
            None => out.push(rng.below(256) as u8),
        }
        return;
    }
    match rng.below(9) {
        0 => {
            // Single bit flip.
            let i = rng.below(out.len() as u64) as usize;
            if let Some(b) = out.get_mut(i) {
                *b ^= 1 << rng.below(8);
            }
        }
        1 => {
            // Random byte overwrite.
            let i = rng.below(out.len() as u64) as usize;
            if let Some(b) = out.get_mut(i) {
                *b = rng.below(256) as u8;
            }
        }
        2 => {
            // Interesting byte overwrite.
            let i = rng.below(out.len() as u64) as usize;
            let v = rng.choose(INTERESTING).copied().unwrap_or(0);
            if let Some(b) = out.get_mut(i) {
                *b = v;
            }
        }
        3 => {
            // Delete a chunk.
            let start = rng.below(out.len() as u64) as usize;
            let len = 1 + rng.below(8.min(out.len() as u64)) as usize;
            let end = (start + len).min(out.len());
            out.drain(start..end);
        }
        4 => {
            // Insert random bytes.
            let at = rng.below(out.len() as u64 + 1) as usize;
            let n = 1 + rng.below(4) as usize;
            for k in 0..n {
                out.insert((at + k).min(out.len()), rng.below(256) as u8);
            }
        }
        5 => {
            // Duplicate a chunk in place.
            let start = rng.below(out.len() as u64) as usize;
            let len = (1 + rng.below(8)) as usize;
            let end = (start + len).min(out.len());
            let chunk: Vec<u8> = out.get(start..end).map(<[u8]>::to_vec).unwrap_or_default();
            let at = rng.below(out.len() as u64 + 1) as usize;
            for (k, b) in chunk.into_iter().enumerate() {
                out.insert((at + k).min(out.len()), b);
            }
        }
        6 => {
            // Dictionary insert.
            if let Some(token) = rng.choose(dict) {
                let at = rng.below(out.len() as u64 + 1) as usize;
                for (k, &b) in token.iter().enumerate() {
                    out.insert((at + k).min(out.len()), b);
                }
            }
        }
        7 => {
            // Dictionary overwrite.
            if let Some(&token) = rng.choose(dict) {
                let at = rng.below(out.len() as u64) as usize;
                for (k, &b) in token.iter().enumerate() {
                    match out.get_mut(at + k) {
                        Some(slot) => *slot = b,
                        None => out.push(b),
                    }
                }
            }
        }
        _ => {
            // Splice: our prefix, the other entry's suffix.
            let cut = rng.below(out.len() as u64 + 1) as usize;
            let other_cut = rng.below(other.len() as u64 + 1) as usize;
            out.truncate(cut);
            out.extend_from_slice(other.get(other_cut..).unwrap_or_default());
        }
    }
}

// ------------------------------------------------------------- corpus

/// Stable content hash for corpus file names (FNV-1a, 64-bit).
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Load every corpus entry under `dir`, sorted by file name so replay
/// order (and therefore the whole schedule) is deterministic. A missing
/// directory is an empty corpus, not an error.
pub fn load_corpus_dir(dir: &Path) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.push((name, std::fs::read(&path)?));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Corpus distillation for `repro fuzz --minimize`: replay the built-in
/// seeds, then each named corpus entry in order, and return the names of
/// the entries that contributed new coverage. Entries not returned are
/// redundant with the seeds and earlier entries and can be deleted.
/// Crashing entries are always kept — they are regressions to report,
/// not redundancy to discard.
pub fn distill(target: &FuzzTarget, corpus: &[(String, Vec<u8>)]) -> Vec<String> {
    let _guard = match ENGINE_LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut seen = SeenMap::new();
    let mut scratch: Vec<(u16, u32)> = Vec::new();
    for seed in target.seeds {
        let _ = execute(target, seed, &mut scratch, &mut seen);
    }
    let mut keep = Vec::new();
    for (name, data) in corpus {
        match execute(target, data, &mut scratch, &mut seen) {
            Exec::Ok {
                new_coverage: false,
            } => {}
            Exec::Ok { new_coverage: true } | Exec::Crash(_) => keep.push(name.clone()),
        }
    }
    std::panic::set_hook(prev_hook);
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_target(data: &[u8]) {
        // Branchy but total: exercises the coverage map.
        match data.first() {
            Some(b'{') => appvsweb_cover::cover!(),
            Some(b'[') => appvsweb_cover::cover!(),
            Some(_) => appvsweb_cover::cover!(),
            None => appvsweb_cover::cover!(),
        }
    }

    fn crashing_target(data: &[u8]) {
        appvsweb_cover::cover!();
        if data.starts_with(b"BOOM") {
            appvsweb_cover::cover!();
            assert!(data.len() < 4, "fuzzer reached the guarded branch");
        }
    }

    const TOTAL: FuzzTarget = FuzzTarget {
        name: "selftest-total",
        run: total_target,
        dict: &[b"{", b"[", b"x"],
        seeds: &[b"{}"],
        max_len: 64,
    };

    const CRASHING: FuzzTarget = FuzzTarget {
        name: "selftest-crash",
        run: crashing_target,
        dict: &[b"BOOM", b"BO", b"OM"],
        seeds: &[b"BOO", b"OOM"],
        max_len: 32,
    };

    #[test]
    fn fuzzing_is_deterministic() {
        let cfg = FuzzConfig {
            iters: 300,
            ..FuzzConfig::default()
        };
        let a = fuzz(&TOTAL, &[], &cfg);
        let b = fuzz(&TOTAL, &[], &cfg);
        assert_eq!(a.execs, b.execs);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.discoveries, b.discoveries);
        assert!(a.is_clean());
        assert!(a.edges >= 2, "distinct branches must appear as edges");
    }

    #[test]
    fn fuzzer_finds_and_minimizes_the_guarded_crash() {
        let cfg = FuzzConfig {
            iters: 2_000,
            ..FuzzConfig::default()
        };
        let outcome = fuzz(&CRASHING, &[], &cfg);
        assert!(
            !outcome.crashes.is_empty(),
            "dictionary-guided mutation must reach the BOOM branch"
        );
        let crash = &outcome.crashes[0];
        assert!(crash.input.starts_with(b"BOOM"));
        assert!(
            crash.input.len() <= 8,
            "minimization should strip the tail: {:?}",
            crash.input
        );
    }

    #[test]
    fn replay_crashes_are_reported_separately() {
        let cfg = FuzzConfig {
            iters: 0,
            ..FuzzConfig::default()
        };
        let corpus = vec![b"BOOMBOOM".to_vec()];
        let outcome = fuzz(&CRASHING, &corpus, &cfg);
        assert_eq!(outcome.replay_crashes.len(), 1);
        assert_eq!(outcome.execs, 3, "two seeds + one corpus entry");
    }

    #[test]
    fn mutation_respects_max_len() {
        let mut rng = SimRng::new(7).fork("mutate-len");
        for _ in 0..200 {
            let out = mutate(&mut rng, b"0123456789", b"abcdef", &[b"TOKEN"], 16);
            assert!(out.len() <= 16);
        }
    }

    #[test]
    fn content_hash_is_stable() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
    }
}
