//! Wall-clock micro-bench runner.
//!
//! The criterion replacement: warmup, auto-batched sampling, and
//! median/p95 per-op statistics, written both to stdout (human table)
//! and to a `BENCH_<suite>.json` artifact via `appvsweb-json`, so every
//! PR can diff the perf trajectory from the repo root.

use appvsweb_json::{encode_pretty, impl_json, Json, ToJson};
use std::hint::black_box;
use std::path::{Path, PathBuf};
// lint:allow(D1) the bench harness is the one legitimate wall-clock consumer
use std::time::Instant;

/// Per-benchmark summary statistics, in nanoseconds per operation.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed samples taken (after warmup).
    pub samples: u64,
    /// Operations per sample (auto-calibrated so one sample is long
    /// enough for the OS clock to resolve).
    pub batch: u64,
    /// Median ns/op.
    pub median_ns: f64,
    /// 95th-percentile ns/op.
    pub p95_ns: f64,
    /// Mean ns/op.
    pub mean_ns: f64,
    /// Fastest sample ns/op.
    pub min_ns: f64,
    /// Slowest sample ns/op.
    pub max_ns: f64,
}

impl_json!(struct BenchResult { name, samples, batch, median_ns, p95_ns, mean_ns, min_ns, max_ns });

/// Collects [`BenchResult`]s for one suite and writes the artifact.
pub struct BenchRunner {
    suite: String,
    warmup_samples: u64,
    samples: u64,
    results: Vec<BenchResult>,
    meta: Vec<(String, Json)>,
}

/// One sample should take at least this long, or per-sample clock
/// noise dominates; the batch size is calibrated up to meet it.
const MIN_SAMPLE_NANOS: u128 = 200_000;

impl BenchRunner {
    /// A runner for the named suite (the artifact will be
    /// `BENCH_<suite>.json`). Sample counts honour the
    /// `TESTKIT_BENCH_SAMPLES` env var so CI can dial cost.
    pub fn new(suite: &str) -> Self {
        let samples = std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        BenchRunner {
            suite: suite.to_string(),
            warmup_samples: 3,
            samples,
            results: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Attach a suite-level metadata value (scan sizes, finding counts,
    /// derived throughput…). Emitted as a `meta` object in the artifact;
    /// suites that record none keep their existing document shape.
    pub fn meta(&mut self, key: &str, value: impl ToJson) {
        self.meta.push((key.to_string(), value.to_json()));
    }

    /// Override warmup/timed sample counts (for long-running benches).
    pub fn with_samples(mut self, warmup: u64, samples: u64) -> Self {
        self.warmup_samples = warmup;
        self.samples = samples.max(1);
        self
    }

    /// Measure `f`, which is called `batch × samples` times after
    /// warmup. The return value is passed through [`black_box`] so the
    /// optimizer cannot elide the work.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        // Calibrate the batch: double until one batch meets the floor.
        let mut batch: u64 = 1;
        loop {
            // lint:allow(D1) wall-clock timing is the harness's whole job
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos();
            if elapsed >= MIN_SAMPLE_NANOS || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.warmup_samples {
            for _ in 0..batch {
                black_box(f());
            }
        }
        let mut per_op: Vec<f64> = (0..self.samples)
            .map(|_| {
                // lint:allow(D1) wall-clock timing is the harness's whole job
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_op.sort_by(|a, b| a.total_cmp(b));

        let result = BenchResult {
            name: name.to_string(),
            samples: self.samples,
            batch,
            median_ns: percentile(&per_op, 50.0),
            p95_ns: percentile(&per_op, 95.0),
            mean_ns: per_op.iter().sum::<f64>() / per_op.len() as f64,
            min_ns: per_op.first().copied().unwrap_or(0.0),
            max_ns: per_op.last().copied().unwrap_or(0.0),
        };
        println!(
            "bench {:<40} median {:>12}  p95 {:>12}  ({} samples × {} ops)",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.p95_ns),
            result.samples,
            result.batch,
        );
        self.results.push(result);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Write `BENCH_<suite>.json` under `dir` and return its path.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        let mut fields = vec![
            ("suite".to_string(), Json::Str(self.suite.clone())),
            ("unit".to_string(), Json::Str("ns_per_op".to_string())),
            ("results".to_string(), self.results.to_json()),
        ];
        if !self.meta.is_empty() {
            fields.push(("meta".to_string(), Json::Obj(self.meta.clone())));
        }
        let doc = Json::Obj(fields);
        std::fs::write(&path, encode_pretty(&doc) + "\n")?;
        println!("bench artifact: {}", path.display());
        Ok(path)
    }
}

/// Linear-interpolated percentile over sorted samples.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 50.0), 2.5);
    }

    #[test]
    fn bench_collects_and_writes_artifact() {
        let mut runner = BenchRunner::new("testkit_selftest").with_samples(1, 5);
        runner.bench("count_to_1000", || (0..1000u64).sum::<u64>());
        assert_eq!(runner.results().len(), 1);
        let r = &runner.results()[0];
        assert!(r.median_ns > 0.0 && r.median_ns <= r.p95_ns.max(r.max_ns));

        let dir = std::env::temp_dir();
        let path = runner.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = appvsweb_json::parse(&text).unwrap();
        assert_eq!(
            doc.get("suite"),
            Some(&Json::Str("testkit_selftest".to_string()))
        );
        assert_eq!(
            doc.get("results").unwrap().at(0).unwrap().get("samples"),
            Some(&Json::Uint(5))
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
        assert_eq!(format_ns(1.5e9), "1.50 s");
    }
}
