//! Shared fixtures for the workspace's integration tests and benches.
//!
//! Before this module existed, every `tests/*.rs` binary carried its own
//! copy of the same three helpers: a `OnceLock`'d canonical study, a
//! "quick" 1-minute study config, and a panic-hook silencer. They now
//! live here once, so a calibration change (e.g. the canonical seed or
//! session length) is a one-line edit instead of a five-file sweep.

use crate::gen::{self, Gen};
use appvsweb_analysis::Study;
use appvsweb_core::study::{run_study, StudyConfig};
use appvsweb_netsim::{FaultPlan, SimDuration, SimRng};
use std::sync::OnceLock;

/// The canonical full study (seed 2016, 4 simulated minutes, ReCon on),
/// computed once per process and shared by every consumer — table and
/// figure tests, golden snapshots, and benches all read the same run.
pub fn canonical_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&StudyConfig::default()))
}

/// A fast study configuration (1-minute sessions, ReCon off) for tests
/// that exercise the pipeline rather than consume its calibrated output.
pub fn quick_study_config() -> StudyConfig {
    StudyConfig {
        duration: SimDuration::from_mins(1),
        use_recon: false,
        ..StudyConfig::default()
    }
}

/// [`quick_study_config`] with a fault plan, for chaos suites.
pub fn quick_study_config_with(faults: FaultPlan) -> StudyConfig {
    StudyConfig {
        faults,
        ..quick_study_config()
    }
}

/// Run the closure with the default panic hook silenced, restoring it
/// after. Tests that crash cells (or fuzz crashing targets) on purpose
/// use this so backtraces stay out of the test log.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Generator of `label(.label)+` hostnames like `tracker.example.com`.
pub fn hosts() -> impl Gen<Value = String> {
    gen::from_fn(|rng: &mut SimRng| {
        let labels = rng.range(2, 3);
        let mut host = String::new();
        for i in 0..labels {
            if i > 0 {
                host.push('.');
            }
            let len = if i + 1 == labels {
                rng.range(2, 5)
            } else {
                rng.range(1, 10)
            };
            for _ in 0..len {
                host.push(rng.range(b'a' as u64, b'z' as u64) as u8 as char);
            }
        }
        host
    })
}

/// Generator of `/seg/seg` URL paths with 0..=3 lowercase alphanumeric
/// segments.
pub fn paths() -> impl Gen<Value = String> {
    gen::from_fn(|rng: &mut SimRng| {
        let segs = rng.below(4);
        let mut path = String::new();
        for _ in 0..segs {
            path.push('/');
            for _ in 0..rng.range(1, 8) {
                let c = b"abcdefghijklmnopqrstuvwxyz0123456789"[rng.below(36) as usize];
                path.push(c as char);
            }
        }
        path
    })
}

fn prob(rng: &mut SimRng, scale: f64) -> f64 {
    (rng.below(1_001) as f64) / 1_000.0 * scale
}

/// Generator of arbitrary network/origin fault plans: every rate in
/// `[0, 0.25]`, sane spike/flap windows, `cell_panic` held at 0 (panic
/// isolation is a study-runner property with its own tests).
pub fn fault_plans() -> impl Gen<Value = FaultPlan> {
    gen::from_fn(|rng: &mut SimRng| FaultPlan {
        packet_loss: prob(rng, 0.25),
        latency_spike: prob(rng, 0.25),
        latency_spike_ms: rng.below(5_000),
        connection_reset: prob(rng, 0.25),
        link_flap: prob(rng, 0.1),
        link_flap_ms: rng.below(10_000),
        dns_servfail: prob(rng, 0.25),
        dns_timeout: prob(rng, 0.25),
        tls_abort: prob(rng, 0.25),
        truncated_body: prob(rng, 0.25),
        malformed_chunked: prob(rng, 0.25),
        server_error: prob(rng, 0.25),
        cell_panic: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_quick() {
        let cfg = quick_study_config();
        assert_eq!(cfg.duration, SimDuration::from_mins(1));
        assert!(!cfg.use_recon);
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = SimRng::new(11).fork("fixtures-gens");
        let mut b = SimRng::new(11).fork("fixtures-gens");
        let h = hosts();
        let p = paths();
        let f = fault_plans();
        for _ in 0..20 {
            assert_eq!(h.generate(&mut a), h.generate(&mut b));
            assert_eq!(p.generate(&mut a), p.generate(&mut b));
            assert_eq!(
                f.generate(&mut a).packet_loss,
                f.generate(&mut b).packet_loss
            );
        }
    }

    #[test]
    fn hosts_look_like_hostnames() {
        let mut rng = SimRng::new(3).fork("fixtures-hosts");
        let g = hosts();
        for _ in 0..50 {
            let host = g.generate(&mut rng);
            assert!(host.contains('.'), "host {host:?} has no dot");
            assert!(host.chars().all(|c| c.is_ascii_lowercase() || c == '.'));
        }
    }
}
