//! Input generators with greedy shrinking.
//!
//! A [`Gen`] draws values from the deterministic [`SimRng`] stream and
//! can propose strictly "smaller" candidates for a failing value. The
//! harness applies candidates greedily: the first one that still fails
//! becomes the new counterexample, until no candidate fails.

use appvsweb_netsim::SimRng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::RangeInclusive;

/// A deterministic value generator with shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draw one value from the stream.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Candidate simplifications of a failing value, most aggressive
    /// first. An empty list ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------- numbers

/// Uniform `u64` in an inclusive range; shrinks toward the lower bound.
pub fn u64s(range: RangeInclusive<u64>) -> U64Range {
    U64Range {
        lo: *range.start(),
        hi: *range.end(),
    }
}

/// Uniform `usize` in an inclusive range; shrinks toward the lower bound.
pub fn usizes(range: RangeInclusive<usize>) -> USizeRange {
    USizeRange(u64s(*range.start() as u64..=*range.end() as u64))
}

/// Uniform `i64` in an inclusive range; shrinks toward zero (clamped to
/// the range), matching proptest's convention for signed integers.
pub fn i64s(range: RangeInclusive<i64>) -> I64Range {
    I64Range {
        lo: *range.start(),
        hi: *range.end(),
    }
}

/// Uniform `u8` in an inclusive range; shrinks toward the lower bound.
pub fn u8s(range: RangeInclusive<u8>) -> U8Range {
    U8Range(u64s(*range.start() as u64..=*range.end() as u64))
}

/// Fair coin; `true` shrinks to `false`.
pub fn bools() -> Bools {
    Bools
}

/// See [`u64s`].
#[derive(Clone, Copy, Debug)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut SimRng) -> u64 {
        rng.range(self.lo, self.hi)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        shrink_ladder(*value, self.lo)
    }
}

/// See [`usizes`].
#[derive(Clone, Copy, Debug)]
pub struct USizeRange(U64Range);

impl Gen for USizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut SimRng) -> usize {
        self.0.generate(rng) as usize
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        self.0
            .shrink(&(*value as u64))
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }
}

/// See [`u8s`].
#[derive(Clone, Copy, Debug)]
pub struct U8Range(U64Range);

impl Gen for U8Range {
    type Value = u8;

    fn generate(&self, rng: &mut SimRng) -> u8 {
        self.0.generate(rng) as u8
    }

    fn shrink(&self, value: &u8) -> Vec<u8> {
        self.0
            .shrink(&(*value as u64))
            .into_iter()
            .map(|v| v as u8)
            .collect()
    }
}

/// See [`i64s`].
#[derive(Clone, Copy, Debug)]
pub struct I64Range {
    lo: i64,
    hi: i64,
}

impl Gen for I64Range {
    type Value = i64;

    fn generate(&self, rng: &mut SimRng) -> i64 {
        let span = self.hi.abs_diff(self.lo);
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        self.lo.wrapping_add(rng.below(span + 1) as i64)
    }

    fn shrink(&self, value: &i64) -> Vec<i64> {
        let v = *value;
        let target = 0i64.clamp(self.lo, self.hi);
        if v == target {
            return Vec::new();
        }
        // Ladder over the distance to the target, mirrored for values
        // below it, so signed shrinking also converges like binary search.
        shrink_ladder(v.abs_diff(target), 0)
            .into_iter()
            .map(|d| {
                if v >= target {
                    target + d as i64
                } else {
                    target - d as i64
                }
            })
            .collect()
    }
}

/// Shrink candidates for a value with a target floor: the floor itself,
/// then a halving ladder closing in on `v` (`v-d, v-d/2, …, v-1`).
/// Greedy selection over this list behaves like binary search, so
/// shrinking converges in O(log²) property runs instead of O(v).
fn shrink_ladder(v: u64, floor: u64) -> Vec<u64> {
    if v <= floor {
        return Vec::new();
    }
    let mut out = vec![floor];
    let mut d = (v - floor) / 2;
    while d > 0 {
        out.push(v - d);
        d /= 2;
    }
    out.dedup();
    out
}

/// See [`bools`].
#[derive(Clone, Copy, Debug)]
pub struct Bools;

impl Gen for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut SimRng) -> bool {
        rng.chance(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ------------------------------------------------------------ collections

/// `Vec` of values from `item`, with a length range. Shrinks the length
/// first (empty, halves, drop-one), then individual elements.
pub fn vecs_of<G: Gen>(item: G, len: RangeInclusive<usize>) -> VecOf<G> {
    VecOf {
        item,
        lo: *len.start(),
        hi: *len.end(),
    }
}

/// Arbitrary bytes with a length range.
pub fn bytes(len: RangeInclusive<usize>) -> VecOf<U8Range> {
    vecs_of(u8s(0..=255), len)
}

/// `BTreeSet` built from up to `max_draws` draws of `item` (duplicates
/// collapse, so sets can come out smaller — same as proptest's
/// `btree_set` with a size range).
pub fn btree_sets_of<G: Gen>(item: G, max_draws: RangeInclusive<usize>) -> BTreeSetOf<G>
where
    G::Value: Ord,
{
    BTreeSetOf {
        inner: vecs_of(item, max_draws),
    }
}

/// See [`vecs_of`].
#[derive(Clone, Copy, Debug)]
pub struct VecOf<G> {
    item: G,
    lo: usize,
    hi: usize,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let len = rng.range(self.lo as u64, self.hi as u64) as usize;
        (0..len).map(|_| self.item.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        for len in shrink_ladder(value.len() as u64, self.lo as u64) {
            out.push(value[..len as usize].to_vec());
        }
        // Element-wise: first shrink candidate per position, capped so
        // huge vectors don't explode the candidate list.
        for (i, item) in value.iter().enumerate().take(16) {
            if let Some(simpler) = self.item.shrink(item).into_iter().next() {
                let mut next = value.clone();
                next[i] = simpler;
                out.push(next);
            }
        }
        out
    }
}

/// See [`btree_sets_of`].
#[derive(Clone, Copy, Debug)]
pub struct BTreeSetOf<G> {
    inner: VecOf<G>,
}

impl<G: Gen> Gen for BTreeSetOf<G>
where
    G::Value: Ord,
{
    type Value = BTreeSet<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> BTreeSet<G::Value> {
        self.inner.generate(rng).into_iter().collect()
    }

    fn shrink(&self, value: &BTreeSet<G::Value>) -> Vec<BTreeSet<G::Value>> {
        let as_vec: Vec<G::Value> = value.iter().cloned().collect();
        self.inner
            .shrink(&as_vec)
            .into_iter()
            .map(|v| v.into_iter().collect())
            .collect()
    }
}

// ---------------------------------------------------------------- strings

/// Strings of printable characters (ASCII plus a sprinkling of
/// multi-byte code points — the practical coverage of proptest's
/// `\PC` regex class). Shrinks length first, then characters to `'a'`.
pub fn printable_strings(len: RangeInclusive<usize>) -> StringGen {
    StringGen {
        chars: CharClass::Printable,
        lo: *len.start(),
        hi: *len.end(),
    }
}

/// Lowercase ASCII strings, the `[a-z]{lo,hi}` workhorse.
pub fn lowercase_strings(len: RangeInclusive<usize>) -> StringGen {
    StringGen {
        chars: CharClass::Lowercase,
        lo: *len.start(),
        hi: *len.end(),
    }
}

/// Lowercase alphanumeric strings (`[a-z0-9]{lo,hi}`).
pub fn alnum_strings(len: RangeInclusive<usize>) -> StringGen {
    StringGen {
        chars: CharClass::LowerAlnum,
        lo: *len.start(),
        hi: *len.end(),
    }
}

#[derive(Clone, Copy, Debug)]
enum CharClass {
    Printable,
    Lowercase,
    LowerAlnum,
}

impl CharClass {
    fn draw(self, rng: &mut SimRng) -> char {
        match self {
            CharClass::Lowercase => (b'a' + rng.below(26) as u8) as char,
            CharClass::LowerAlnum => {
                let i = rng.below(36) as u8;
                if i < 26 {
                    (b'a' + i) as char
                } else {
                    (b'0' + i - 26) as char
                }
            }
            CharClass::Printable => {
                // Mostly printable ASCII, occasionally multi-byte.
                if rng.chance(0.9) {
                    (0x20 + rng.below(0x5f) as u8) as char
                } else {
                    const EXOTIC: &[char] =
                        &['é', 'π', '☂', '中', '𝄞', 'Ω', 'ß', '→', '\u{a0}', '￿'];
                    rng.choose(EXOTIC).copied().unwrap_or('?')
                }
            }
        }
    }
}

/// See [`printable_strings`] and friends.
#[derive(Clone, Copy, Debug)]
pub struct StringGen {
    chars: CharClass,
    lo: usize,
    hi: usize,
}

impl Gen for StringGen {
    type Value = String;

    fn generate(&self, rng: &mut SimRng) -> String {
        let len = rng.range(self.lo as u64, self.hi as u64) as usize;
        (0..len).map(|_| self.chars.draw(rng)).collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        for len in shrink_ladder(chars.len() as u64, self.lo as u64) {
            out.push(chars[..len as usize].iter().collect());
        }
        for (i, &c) in chars.iter().enumerate().take(16) {
            if c != 'a' {
                let mut next = chars.clone();
                next[i] = 'a';
                out.push(next.into_iter().collect());
            }
        }
        out
    }
}

// ------------------------------------------------------------ combinators

/// A generator from a closure; no shrinking. The escape hatch for
/// structured inputs (hostnames, paths) where shrinking has little
/// value.
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut SimRng) -> T,
{
    FromFn(f)
}

/// Pick one of the listed values uniformly; shrinks toward the first.
pub fn one_of<T: Clone + Debug + PartialEq>(choices: &'static [T]) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of requires at least one choice");
    OneOf(choices)
}

/// See [`from_fn`].
#[derive(Clone, Copy)]
pub struct FromFn<F>(F);

impl<T, F> Gen for FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut SimRng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        (self.0)(rng)
    }
}

/// See [`one_of`].
#[derive(Clone, Copy, Debug)]
pub struct OneOf<T: 'static>(&'static [T]);

impl<T: Clone + Debug + PartialEq> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        if *value == self.0[0] {
            Vec::new()
        } else {
            vec![self.0[0].clone()]
        }
    }
}

/// Pairs of generators (used directly or via the tuple impls).
macro_rules! impl_gen_tuple {
    ($($g:ident/$v:ident/$idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_tuple!(A / a / 0);
impl_gen_tuple!(A / a / 0, B / b / 1);
impl_gen_tuple!(A / a / 0, B / b / 1, C / c / 2);
impl_gen_tuple!(A / a / 0, B / b / 1, C / c / 2, D / d / 3);
impl_gen_tuple!(A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);
