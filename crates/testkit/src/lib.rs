//! Deterministic test and bench harness for the appvsweb workspace.
//!
//! Replaces `proptest` and `criterion` with two small, fully offline
//! subsystems that share the workspace's reproducibility contract:
//!
//! * **Property testing** ([`gen`], [`check`], [`prop_test!`]): inputs
//!   are drawn from the same SplitMix64 [`SimRng`] stream the simulator
//!   uses, forked per test name from a fixed harness seed — every run,
//!   on every machine, sees the same cases. Failures are greedily
//!   shrunk before being reported.
//! * **Coverage-guided fuzzing** ([`fuzz`]): byte-level mutation over
//!   `appvsweb-cover` edge coverage, with a committed regression corpus
//!   and crash minimization through the property shrinker. The mutation
//!   schedule is drawn from a per-target forked [`SimRng`] stream, so a
//!   fuzz run is as reproducible as a property test.
//! * **Micro-benchmarks** ([`bench`]): a wall-clock runner with warmup
//!   and auto-batching that reports median/p95 per op and writes
//!   `BENCH_*.json` artifacts through `appvsweb-json`.
//! * **Shared fixtures** ([`fixtures`]): the study/world setup helpers
//!   integration tests used to copy-paste.

pub mod bench;
pub mod fixtures;
pub mod fuzz;
pub mod gen;
mod prop;

pub use appvsweb_netsim::SimRng;
pub use bench::{BenchResult, BenchRunner};
pub use fuzz::{Crash, FuzzConfig, FuzzOutcome, FuzzTarget};
pub use gen::Gen;
pub use prop::{check, check_with, PropConfig};

/// Define property tests over [`gen`] generators.
///
/// ```ignore
/// appvsweb_testkit::prop_test! {
///     fn addition_commutes(a in gen::u64s(0..=100), b in gen::u64s(0..=100)) {
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each function becomes a `#[test]` that draws its cases from a stream
/// forked from the fixed harness seed by test name, runs the body per
/// case, and on failure greedily shrinks the input before panicking with
/// the minimal counterexample.
#[macro_export]
macro_rules! prop_test {
    ($( $(#[$attr:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block )+) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                let gens = ($($gen,)+);
                $crate::check(stringify!($name), &gens, |case| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(case);
                    $body
                });
            }
        )+
    };
}
