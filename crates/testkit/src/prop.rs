//! The property-test runner: fixed-seed case generation and greedy
//! shrinking.

use crate::gen::Gen;
use appvsweb_netsim::SimRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Harness parameters. The defaults make every run identical; CI or a
/// local soak can raise the case count with `TESTKIT_CASES`.
#[derive(Clone, Copy, Debug)]
pub struct PropConfig {
    /// Harness seed; per-test streams are forked from it by test name.
    pub seed: u64,
    /// Cases per property.
    pub cases: u32,
    /// Cap on shrinking steps (each step re-runs the property).
    pub max_shrink_steps: u32,
}

impl Default for PropConfig {
    fn default() -> Self {
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        PropConfig {
            seed: 2016,
            cases,
            max_shrink_steps: 512,
        }
    }
}

/// Run a property over `cfg.cases` generated inputs; on failure, shrink
/// greedily and panic with the minimal counterexample.
///
/// The property may signal failure by panicking (any `assert!`) — the
/// harness catches the unwind, shrinks with the panic hook silenced, and
/// re-raises a summary panic naming the test, the case number, the seed,
/// and the minimal failing input.
pub fn check<G, F>(name: &str, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value),
{
    check_with(&PropConfig::default(), name, gen, prop)
}

/// [`check`] with explicit configuration.
pub fn check_with<G, F>(cfg: &PropConfig, name: &str, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value),
{
    // lint:allow(D3) the label is the caller's static property name, passed through verbatim
    let mut rng = SimRng::new(cfg.seed).fork(name);
    for case in 0..cfg.cases {
        let value = gen.generate(&mut rng);
        if let Err(message) = run_one(&prop, &value) {
            let (minimal, steps) = shrink(cfg, gen, &prop, value);
            let final_message = run_one(&prop, &minimal).err().unwrap_or(message);
            // lint:allow(R1) a test harness reports failure by panicking
            panic!(
                "property {name} failed (case {case}/{cases}, seed {seed}, {steps} shrink \
                 steps)\nminimal input: {minimal:?}\nfailure: {final_message}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

/// Run the property once, converting a panic into `Err(message)`.
pub(crate) fn run_one<V, F: Fn(&V)>(prop: &F, value: &V) -> Result<(), String> {
    let prev_hook = std::panic::take_hook();
    // Silence the default hook's backtrace spam while probing.
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| prop(value)));
    std::panic::set_hook(prev_hook);
    match result {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload)),
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s.to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Greedy shrink: repeatedly take the first candidate that still fails.
/// Shared with the fuzzing engine, which minimizes crash inputs through
/// the same ladder.
pub(crate) fn shrink<G, F>(
    cfg: &PropConfig,
    gen: &G,
    prop: &F,
    mut current: G::Value,
) -> (G::Value, u32)
where
    G: Gen,
    F: Fn(&G::Value),
{
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            steps += 1;
            if run_one(prop, &candidate).is_err() {
                current = candidate;
                continue 'outer;
            }
            if steps >= cfg.max_shrink_steps {
                break;
            }
        }
        break;
    }
    (current, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0;
        // Count via a Cell-free trick: the closure may not capture &mut,
        // so count with an atomic.
        let counter = std::sync::atomic::AtomicU32::new(0);
        check("passing_property", &(gen::u64s(0..=100),), |&(v,)| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            assert!(v <= 100);
        });
        seen += counter.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(seen, PropConfig::default().cases);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut rng_a = SimRng::new(2016).fork("some_test");
        let mut rng_b = SimRng::new(2016).fork("some_test");
        let g = gen::printable_strings(0..=32);
        for _ in 0..20 {
            assert_eq!(g.generate(&mut rng_a), g.generate(&mut rng_b));
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        let result = std::panic::catch_unwind(|| {
            check_with(
                &PropConfig {
                    seed: 2016,
                    cases: 64,
                    max_shrink_steps: 512,
                },
                "must_shrink",
                &(gen::u64s(0..=10_000),),
                |&(v,)| assert!(v < 500, "too big: {v}"),
            );
        });
        let msg = panic_message(result.unwrap_err());
        // Greedy shrinking must land exactly on the boundary value.
        assert!(
            msg.contains("minimal input: (500,)"),
            "unexpected report: {msg}"
        );
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        let result = std::panic::catch_unwind(|| {
            check("vec_shrink", &(gen::bytes(0..=64),), |(v,)| {
                assert!(v.len() < 4, "len {}", v.len())
            });
        });
        let msg = panic_message(result.unwrap_err());
        // A minimal failing vector has exactly 4 elements.
        let shrunk: Vec<u8> = vec![0; 4];
        assert!(
            msg.contains(&format!("{shrunk:?}")) || msg.contains("len 4"),
            "unexpected report: {msg}"
        );
    }
}
