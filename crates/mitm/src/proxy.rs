//! The Meddle tunnel + interception proxy.
//!
//! One [`Meddle`] instance plays the role of the study's VPN server and
//! mitmproxy combined. Every HTTP(S) exchange a device makes during a
//! session goes through [`Meddle::exchange`]; at the end of the session
//! [`Meddle::finish_session`] closes any live connections and yields the
//! captured [`Trace`].

use crate::flow::{ConnectionRecord, FlowError, HttpTransaction, OpaqueReason, Trace};
use appvsweb_httpsim::{degrade, wire, Request, Response};
use appvsweb_netsim::dns::{CacheState, DnsError, DnsErrorKind};
use appvsweb_netsim::faults::{ConnFault, DnsFault};
use appvsweb_netsim::{
    rng_labels, Connection, DnsResolver, Endpoint, FaultCounts, FaultInjector, FaultPlan, Link,
    SimRng, SimTime,
};
use appvsweb_tlssim::{
    handshake::{handshake, handshake_with_fault},
    CertificateAuthority, ClientConfig, HandshakeError, PinSet, ServerConfig, TlsSession,
    TrustStore,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// An origin server the proxy can connect to. The `services` crate
/// implements this for every first- and third-party host in the simulated
/// world.
pub trait OriginServer {
    /// TLS configuration the origin at `host` presents for HTTPS
    /// connections.
    fn tls_config(&self, host: &str) -> ServerConfig;
    /// Handle a request, producing a response.
    fn handle(&mut self, req: &Request, now: SimTime) -> Response;
}

/// Connection reuse policy for a client.
///
/// 2016-era apps hold a persistent connection per API host; browsers open
/// parallel connections and recycle them far more aggressively — one of
/// the mechanical reasons Web sessions produce so many more flows
/// (paper Fig. 1b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReusePolicy {
    /// Whether to reuse an open connection to the same host at all.
    pub reuse: bool,
    /// Maximum exchanges per connection before it is retired.
    pub max_per_conn: u32,
}

impl ReusePolicy {
    /// App-style: persistent connections, generous reuse.
    pub fn app() -> Self {
        ReusePolicy {
            reuse: true,
            max_per_conn: 100,
        }
    }

    /// Browser-style: limited reuse per connection (headers, parallel
    /// sockets, and server `Connection: close` all cap real-world reuse).
    pub fn browser() -> Self {
        ReusePolicy {
            reuse: true,
            max_per_conn: 6,
        }
    }

    /// No reuse: every exchange opens a fresh connection (beacons,
    /// redirect chains across distinct hosts behave this way).
    pub fn one_shot() -> Self {
        ReusePolicy {
            reuse: false,
            max_per_conn: 1,
        }
    }
}

/// Why an exchange failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// Client aborted: forged chain violated its pins (interception
    /// defeated — the Facebook/Twitter case).
    PinViolation,
    /// Proxy could not verify the origin's chain.
    UpstreamUntrusted,
    /// DNS failure (NXDOMAIN, or injected SERVFAIL/timeout).
    Dns(DnsError),
    /// The access link was down (flap window): nothing left the device.
    LinkDown,
    /// The exchange's packets were lost until the client timed out.
    Timeout,
    /// The connection was reset mid-exchange.
    Reset,
    /// The TLS handshake aborted for a network-level reason (beyond
    /// certificate and pin failures).
    TlsAbort,
    /// Internal proxy bookkeeping failure. Never expected; surfaced as
    /// an error so a capture degrades instead of panicking.
    Internal(&'static str),
}

impl ExchangeError {
    /// Whether a client retry can plausibly succeed. Trust decisions
    /// (pins, untrusted chains) and NXDOMAIN are deterministic — they
    /// fail identically on every attempt — while network weather is
    /// transient.
    pub fn retriable(&self) -> bool {
        match self {
            ExchangeError::PinViolation
            | ExchangeError::UpstreamUntrusted
            | ExchangeError::Internal(_) => false,
            ExchangeError::Dns(e) => e.kind.is_transient(),
            ExchangeError::LinkDown
            | ExchangeError::Timeout
            | ExchangeError::Reset
            | ExchangeError::TlsAbort => true,
        }
    }
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::PinViolation => f.write_str("client pin violation"),
            ExchangeError::UpstreamUntrusted => f.write_str("upstream certificate untrusted"),
            ExchangeError::Dns(e) => write!(f, "dns: {e}"),
            ExchangeError::LinkDown => f.write_str("access link down"),
            ExchangeError::Timeout => f.write_str("exchange timed out"),
            ExchangeError::Reset => f.write_str("connection reset"),
            ExchangeError::TlsAbort => f.write_str("tls handshake aborted"),
            ExchangeError::Internal(what) => write!(f, "internal proxy error: {what}"),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// Tunnel configuration.
#[derive(Clone, Debug)]
pub struct MeddleConfig {
    /// Label for the proxy's CA (appears in forged chains).
    pub ca_label: String,
    /// When false the proxy passes TLS through without decrypting
    /// (capture still records flows and byte counts).
    pub intercept_tls: bool,
    /// Access-path model (device → Wi-Fi → VPN); drives per-connection
    /// busy-time accounting.
    pub link: Link,
}

impl Default for MeddleConfig {
    fn default() -> Self {
        MeddleConfig {
            ca_label: "MeddleProxyCA".into(),
            intercept_tls: true,
            link: Link::wifi_vpn(),
        }
    }
}

struct PoolEntry {
    conn_index: usize,
    uses: u32,
    tls_session: Option<TlsSession>,
}

/// The VPN tunnel + TLS interception proxy.
pub struct Meddle {
    /// The proxy's certificate authority. Install `ca().root` in a device
    /// trust store to enable interception, exactly as the study installed
    /// the mitmproxy CA on its test phones.
    ca: CertificateAuthority,
    upstream_trust: TrustStore,
    dns: DnsResolver,
    config: MeddleConfig,
    // Live session state:
    connections: Vec<Connection>,
    records: Vec<ConnectionRecord>,
    transactions: Vec<HttpTransaction>,
    pool: BTreeMap<(String, u16), PoolEntry>,
    /// Hosts a TLS session was already established with this session —
    /// later connections resume (abbreviated handshake), which is what
    /// keeps repeat-connection byte counts realistic.
    tls_session_cache: std::collections::BTreeSet<String>,
    next_conn_id: u64,
    client_addr: Ipv4Addr,
    /// Tunnel-side chaos dice (disabled by default: never draws).
    faults: FaultInjector,
}

impl Meddle {
    /// Create a tunnel. `upstream_trust` is the root set the proxy uses to
    /// verify real origins; `rng` seeds DNS latency jitter.
    pub fn new(config: MeddleConfig, upstream_trust: TrustStore, rng: &SimRng) -> Self {
        Meddle {
            ca: CertificateAuthority::new(&config.ca_label),
            upstream_trust,
            dns: DnsResolver::new(rng.fork(rng_labels::MEDDLE_DNS)),
            config,
            connections: Vec::new(),
            records: Vec::new(),
            transactions: Vec::new(),
            pool: BTreeMap::new(),
            tls_session_cache: std::collections::BTreeSet::new(),
            next_conn_id: 1,
            client_addr: Ipv4Addr::new(192, 168, 42, 2),
            faults: FaultInjector::disabled(),
        }
    }

    /// Arm the tunnel-side fault injector. The injector draws from its
    /// own labelled fork of `rng`, so arming it with [`FaultPlan::none`]
    /// (or never calling this) leaves every other stream untouched.
    pub fn set_faults(&mut self, plan: FaultPlan, rng: &SimRng) {
        self.faults = FaultInjector::new(plan, rng.fork(rng_labels::MEDDLE_CHAOS));
    }

    /// Ledger of tunnel-side faults injected so far this session.
    pub fn fault_counts(&self) -> &FaultCounts {
        self.faults.counts()
    }

    /// The proxy CA — its root must be installed on the device for
    /// interception to succeed.
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// Mutable access to the tunnel's DNS resolver (to pre-register hosts
    /// or inspect query statistics).
    pub fn dns_mut(&mut self) -> &mut DnsResolver {
        &mut self.dns
    }

    /// Perform one HTTP(S) exchange through the tunnel.
    ///
    /// * `client_trust`/`client_pins` — the device/app TLS view.
    /// * `origin` — the server behind `req.url.host`.
    /// * `reuse` — the client's connection reuse policy.
    ///
    /// On success the response is returned and the exchange is captured.
    /// On TLS failure the connection attempt is still captured (opaque),
    /// matching what a packet capture would show.
    pub fn exchange(
        &mut self,
        client_trust: &TrustStore,
        client_pins: &PinSet,
        origin: &mut dyn OriginServer,
        req: Request,
        now: SimTime,
        reuse: ReusePolicy,
    ) -> Result<Response, ExchangeError> {
        let host = req.url.host.as_str().to_string();
        let port = req.url.effective_port();
        let tls = !req.url.is_plaintext();
        appvsweb_obs::stamp(now.as_millis());
        let _span = appvsweb_obs::span!("mitm.exchange", "{} {host}", req.method.as_str());

        // Link flap: the access link is down, nothing leaves the device
        // (so there is no connection record — the radio never keyed up).
        if self.faults.link_down(now.as_millis()) {
            appvsweb_obs::counter!("mitm.link_down");
            appvsweb_obs::event!("link.down", "{host}");
            return Err(ExchangeError::LinkDown);
        }

        // DNS through the tunnel. Unknown hosts are registered on first
        // use: the simulated world's zone is defined by who gets talked to.
        if !self.dns.knows(&host) {
            self.dns.register_auto(&host);
        }
        // Injected DNS faults hit only queries that would reach the
        // network; answers from either cache (positive or negative)
        // resolve locally and roll nothing.
        if self.dns.cache_state(&host, now) == CacheState::Miss {
            if let Some(fault) = self.faults.dns_fault() {
                let kind = match fault {
                    DnsFault::ServFail => DnsErrorKind::ServFail,
                    DnsFault::Timeout => DnsErrorKind::Timeout,
                };
                return Err(ExchangeError::Dns(self.dns.fail(&host, kind, now)));
            }
        }
        let answer = self.dns.resolve(&host, now).map_err(ExchangeError::Dns)?;

        // Find or open a connection.
        let key = (host.clone(), port);
        let reusable = matches!(
            self.pool.get(&key),
            Some(e) if reuse.reuse
                && e.uses < reuse.max_per_conn
                && self.connections[e.conn_index].is_open()
        );
        if !reusable {
            // Retire any stale pool entry and open a new connection.
            if let Some(old) = self.pool.remove(&key) {
                self.close_conn(old.conn_index, now);
            }
            let conn_index = self.open_conn(&host, port, answer.addr, tls, now);

            // TLS setup happens once per connection.
            let tls_session = if tls {
                let abort = self.faults.tls_abort();
                match self.establish_tls(client_trust, client_pins, origin, &host, now, abort) {
                    Ok(sess) => {
                        // Handshake bytes: client sends ~1/4, server ~3/4
                        // (certificates dominate the server flight).
                        let hs = sess.handshake_bytes;
                        appvsweb_obs::counter!("mitm.handshake_bytes", hs);
                        let conn = &mut self.connections[conn_index];
                        conn.send(hs / 4);
                        conn.receive(hs - hs / 4);
                        self.records[conn_index].decrypted = self.config.intercept_tls;
                        // Two round trips for the TLS handshake plus
                        // serialization of its flights.
                        self.records[conn_index].busy_ms += self
                            .config
                            .link
                            .exchange_time(hs / 4, hs - hs / 4)
                            .as_millis()
                            + self.config.link.round_trip().as_millis();
                        Some(sess)
                    }
                    Err(err) => {
                        // The aborted handshake still moved packets.
                        appvsweb_obs::counter!("mitm.tls_failed_bytes", 512 + 2048);
                        let conn = &mut self.connections[conn_index];
                        conn.send(512);
                        conn.receive(2048);
                        let reason = match &err {
                            ExchangeError::PinViolation => OpaqueReason::PinViolation,
                            ExchangeError::TlsAbort => OpaqueReason::HandshakeAborted,
                            _ => OpaqueReason::UpstreamUntrusted,
                        };
                        appvsweb_obs::event!("flow.opaque", "{host} {reason:?}");
                        self.records[conn_index].decrypted = false;
                        self.records[conn_index].opaque_reason = Some(reason);
                        if err == ExchangeError::TlsAbort {
                            self.records[conn_index].error = Some(FlowError::TlsAborted);
                        }
                        self.close_conn(conn_index, now);
                        return Err(err);
                    }
                }
            } else {
                None
            };
            self.pool.insert(
                key.clone(),
                PoolEntry {
                    conn_index,
                    uses: 0,
                    tls_session,
                },
            );
        }
        // A miss here would mean the bookkeeping above went wrong; the
        // exchange is dropped rather than panicking the capture.
        let Some(entry) = self.pool.get_mut(&key) else {
            return Err(ExchangeError::Internal("connection pool lost an entry"));
        };
        entry.uses += 1;
        let uses = entry.uses;
        let conn_index = entry.conn_index;
        let tls_session = entry.tls_session.clone();

        // Exact arithmetic length — no serialization on the hot path;
        // equality with serialize_request().len() is a differential law.
        let req_bytes = wire::request_wire_len(&req);
        appvsweb_obs::counter!("httpsim.codec_bytes", req_bytes);
        appvsweb_obs::event!("http.request", "{host} bytes={req_bytes}");

        // Connection-level fault: the request dies before a response. A
        // timeout means the full request went up and nothing came back; a
        // reset kills the connection almost immediately.
        if let Some(fault) = self.faults.conn_fault() {
            let up_full = match &tls_session {
                Some(sess) => sess.wire_bytes(req_bytes),
                None => req_bytes,
            };
            let (err, flow_err, up_sent) = match fault {
                ConnFault::Timeout => (ExchangeError::Timeout, FlowError::Timeout, up_full),
                ConnFault::Reset => (ExchangeError::Reset, FlowError::Reset, up_full.min(256)),
            };
            appvsweb_obs::counter!("mitm.bytes_lost", up_full - up_sent);
            appvsweb_obs::event!("conn.fault", "{host} {flow_err:?}");
            self.connections[conn_index].send(up_sent);
            self.records[conn_index].stats = self.connections[conn_index].stats;
            self.records[conn_index].busy_ms +=
                self.config.link.exchange_time(up_sent, 0).as_millis();
            self.records[conn_index].error = Some(flow_err);
            self.pool.remove(&key);
            self.close_conn(conn_index, now);
            return Err(err);
        }

        // Latency spike: the exchange completes, but the link stalled.
        if let Some(extra) = self.faults.latency_spike() {
            appvsweb_obs::event!("link.latency_spike", "{}ms", extra.as_millis());
            self.records[conn_index].busy_ms += extra.as_millis();
        }

        // Move the request to the origin and the response back.
        let response = origin.handle(&req, now);
        let resp_bytes = wire::response_wire_len(&response);
        appvsweb_obs::counter!("httpsim.codec_bytes", resp_bytes);
        appvsweb_obs::event!(
            "http.response",
            "{host} status={} bytes={resp_bytes}",
            response.status.0
        );
        let (up, down) = match &tls_session {
            Some(sess) => (sess.wire_bytes(req_bytes), sess.wire_bytes(resp_bytes)),
            None => (req_bytes, resp_bytes),
        };
        let decrypted = self.records[conn_index].decrypted || !tls;
        appvsweb_obs::histogram!("mitm.exchange_wire_bytes", up + down);
        {
            let conn = &mut self.connections[conn_index];
            conn.send(up);
            conn.receive(down);
        }
        self.records[conn_index].stats = self.connections[conn_index].stats;
        self.records[conn_index].busy_ms += self.config.link.exchange_time(up, down).as_millis();

        if decrypted {
            appvsweb_obs::counter!("mitm.transactions");
            appvsweb_obs::event!("har.entry", "{host}");
            self.records[conn_index].transactions += 1;
            self.transactions.push(HttpTransaction {
                connection_id: self.records[conn_index].id,
                host,
                plaintext: !tls,
                at: now,
                request: req,
                partial: degrade::is_partial(&response),
                response: response.clone(),
            });
        }

        if !reuse.reuse || uses >= reuse.max_per_conn {
            if let Some(old) = self.pool.remove(&key) {
                self.close_conn(old.conn_index, now);
            }
        }

        Ok(response)
    }

    fn open_conn(
        &mut self,
        host: &str,
        port: u16,
        addr: Ipv4Addr,
        tls: bool,
        now: SimTime,
    ) -> usize {
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let client = Endpoint::new(self.client_addr, 49152 + (id % 16384) as u16);
        let server = Endpoint::new(addr, port);
        appvsweb_obs::counter!("mitm.flows_opened");
        appvsweb_obs::event!("flow.open", "{host}:{port} tls={tls}");
        let conn = Connection::open(id, client, server, now);
        self.records.push(ConnectionRecord {
            id,
            host: host.to_string(),
            port,
            tls,
            decrypted: !tls, // plaintext is trivially readable
            opaque_reason: None,
            opened_at: now,
            closed_at: None,
            stats: conn.stats,
            // The TCP handshake costs one round trip before data moves.
            busy_ms: self.config.link.round_trip().as_millis(),
            transactions: 0,
            error: None,
        });
        self.connections.push(conn);
        self.connections.len() - 1
    }

    fn close_conn(&mut self, index: usize, now: SimTime) {
        appvsweb_obs::counter!("mitm.flows_closed");
        appvsweb_obs::event!("flow.close", "{}", self.records[index].host);
        self.connections[index].close(now);
        self.records[index].closed_at = Some(now);
        self.records[index].stats = self.connections[index].stats;
    }

    /// Device-side (forged or passthrough) and upstream handshakes.
    /// `abort` is the fault-injection input: the device-side handshake
    /// dies with [`HandshakeError::Aborted`] after trust and pin checks,
    /// so an injected abort can never mask a deterministic failure.
    fn establish_tls(
        &mut self,
        client_trust: &TrustStore,
        client_pins: &PinSet,
        origin: &dyn OriginServer,
        host: &str,
        now: SimTime,
        abort: bool,
    ) -> Result<TlsSession, ExchangeError> {
        let origin_config = origin.tls_config(host);
        let resume = self.tls_session_cache.contains(host);
        let map_err = |e: HandshakeError| match e {
            HandshakeError::PinViolation => ExchangeError::PinViolation,
            HandshakeError::UntrustedCertificate => ExchangeError::UpstreamUntrusted,
            HandshakeError::Aborted => ExchangeError::TlsAbort,
        };

        let result = if self.config.intercept_tls {
            // Proxy first verifies the real origin…
            let proxy_client = ClientConfig {
                trust: &self.upstream_trust,
                pins: &PinSet::none(),
                server_name: host.to_string(),
                now: now.as_secs(),
            };
            handshake(&proxy_client, &origin_config, resume)
                .map_err(|_| ExchangeError::UpstreamUntrusted)?;

            // …then presents a forged chain to the device.
            let forged = ServerConfig {
                chain: self.ca.chain_for(host),
                supports_resumption: true,
            };
            let device_client = ClientConfig {
                trust: client_trust,
                pins: client_pins,
                server_name: host.to_string(),
                now: now.as_secs(),
            };
            handshake_with_fault(&device_client, &forged, resume, abort).map_err(map_err)
        } else {
            // Passthrough: the device talks TLS straight to the origin.
            let device_client = ClientConfig {
                trust: client_trust,
                pins: client_pins,
                server_name: host.to_string(),
                now: now.as_secs(),
            };
            handshake_with_fault(&device_client, &origin_config, resume, abort).map_err(map_err)
        };
        if result.is_ok() {
            self.tls_session_cache.insert(host.to_string());
        }
        result
    }

    /// Number of currently open (pooled) connections.
    pub fn open_connections(&self) -> usize {
        self.pool.len()
    }

    /// End the session: close everything and take the trace. The tunnel
    /// is left ready for a fresh session.
    pub fn finish_session(&mut self, now: SimTime) -> Trace {
        appvsweb_obs::stamp(now.as_millis());
        let open: Vec<usize> = self.pool.values().map(|e| e.conn_index).collect();
        for idx in open {
            self.close_conn(idx, now);
        }
        self.pool.clear();
        self.tls_session_cache.clear();
        self.connections.clear();
        self.next_conn_id = 1;
        self.dns.flush_cache();
        Trace {
            connections: std::mem::take(&mut self.records),
            transactions: std::mem::take(&mut self.transactions),
            faults: self.faults.take_counts(),
            retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_httpsim::{Body, Url};
    use appvsweb_tlssim::cert::CertificateAuthority;

    /// A trivial origin: 200 OK echo server under a given CA.
    struct TestOrigin {
        chain_ca: CertificateAuthority,
        host: String,
    }

    impl TestOrigin {
        fn new(host: &str) -> Self {
            TestOrigin {
                chain_ca: CertificateAuthority::new("PublicRoot"),
                host: host.into(),
            }
        }
    }

    impl OriginServer for TestOrigin {
        fn tls_config(&self, host: &str) -> ServerConfig {
            assert_eq!(host, self.host, "test origin serves a single host");
            ServerConfig {
                chain: self.chain_ca.chain_for(&self.host),
                supports_resumption: true,
            }
        }
        fn handle(&mut self, req: &Request, _now: SimTime) -> Response {
            Response::ok(Body::text(format!("echo {}", req.url.path)))
        }
    }

    fn world() -> (Meddle, TrustStore, TestOrigin) {
        let public = CertificateAuthority::new("PublicRoot");
        let mut upstream = TrustStore::new();
        upstream.add_root(&public.root);
        let meddle = Meddle::new(MeddleConfig::default(), upstream, &SimRng::new(7));
        // Device trusts public roots AND the proxy CA (methodology step).
        let mut device_trust = TrustStore::new();
        device_trust.add_root(&public.root);
        device_trust.add_root(&meddle.ca().root);
        let origin = TestOrigin::new("api.example.com");
        (meddle, device_trust, origin)
    }

    fn get(url: &str) -> Request {
        Request::get(Url::parse(url).unwrap())
    }

    #[test]
    fn https_interception_captures_plaintext() {
        let (mut meddle, trust, mut origin) = world();
        let resp = meddle
            .exchange(
                &trust,
                &PinSet::none(),
                &mut origin,
                get("https://api.example.com/v1/data?uid=42"),
                SimTime(100),
                ReusePolicy::app(),
            )
            .unwrap();
        assert!(resp.status.is_success());
        let trace = meddle.finish_session(SimTime(200));
        assert_eq!(trace.connections.len(), 1);
        assert!(trace.connections[0].decrypted);
        assert!(trace.connections[0].tls);
        assert_eq!(trace.transactions.len(), 1);
        assert_eq!(
            trace.transactions[0].request.url.query.as_deref(),
            Some("uid=42")
        );
        // TLS handshake + record overhead is visible in the byte counts.
        assert!(trace.connections[0].stats.total_bytes() > 1000);
    }

    #[test]
    fn pinned_client_defeats_interception() {
        let (mut meddle, trust, mut origin) = world();
        // Pin the origin's *real* leaf key.
        let real_key = origin
            .tls_config("api.example.com")
            .chain
            .leaf()
            .unwrap()
            .key;
        let pins = PinSet::of([real_key]);
        let err = meddle.exchange(
            &trust,
            &pins,
            &mut origin,
            get("https://api.example.com/"),
            SimTime(0),
            ReusePolicy::app(),
        );
        assert_eq!(err, Err(ExchangeError::PinViolation));
        let trace = meddle.finish_session(SimTime(1));
        assert_eq!(trace.connections.len(), 1);
        assert!(!trace.connections[0].decrypted);
        assert_eq!(
            trace.connections[0].opaque_reason,
            Some(OpaqueReason::PinViolation)
        );
        assert!(
            trace.transactions.is_empty(),
            "no plaintext visibility for pinned traffic"
        );
    }

    #[test]
    fn plaintext_http_needs_no_tls() {
        let (mut meddle, trust, mut origin) = world();
        meddle
            .exchange(
                &trust,
                &PinSet::none(),
                &mut origin,
                get("http://tracker.example.net/pixel?loc=42.36,-71.05"),
                SimTime(0),
                ReusePolicy::one_shot(),
            )
            .unwrap();
        let trace = meddle.finish_session(SimTime(1));
        assert!(!trace.connections[0].tls);
        assert!(trace.connections[0].decrypted);
        assert!(trace.transactions[0].plaintext);
        assert!(trace.connections[0].closed_at.is_some());
    }

    #[test]
    fn reuse_policy_controls_flow_count() {
        let (mut meddle, trust, mut origin) = world();
        for _ in 0..10 {
            meddle
                .exchange(
                    &trust,
                    &PinSet::none(),
                    &mut origin,
                    get("https://api.example.com/item"),
                    SimTime(0),
                    ReusePolicy::app(),
                )
                .unwrap();
        }
        let reused = meddle.finish_session(SimTime(1));
        assert_eq!(
            reused.connections.len(),
            1,
            "app policy reuses one connection"
        );
        assert_eq!(reused.connections[0].transactions, 10);

        for _ in 0..10 {
            meddle
                .exchange(
                    &trust,
                    &PinSet::none(),
                    &mut origin,
                    get("https://api.example.com/item"),
                    SimTime(0),
                    ReusePolicy::one_shot(),
                )
                .unwrap();
        }
        let one_shot = meddle.finish_session(SimTime(1));
        assert_eq!(
            one_shot.connections.len(),
            10,
            "one-shot opens a flow per exchange"
        );
    }

    #[test]
    fn browser_policy_caps_exchanges_per_connection() {
        let (mut meddle, trust, mut origin) = world();
        for _ in 0..13 {
            meddle
                .exchange(
                    &trust,
                    &PinSet::none(),
                    &mut origin,
                    get("https://api.example.com/obj"),
                    SimTime(0),
                    ReusePolicy::browser(),
                )
                .unwrap();
        }
        let trace = meddle.finish_session(SimTime(1));
        // 13 exchanges at max 6 per connection = 3 connections.
        assert_eq!(trace.connections.len(), 3);
    }

    #[test]
    fn busy_time_tracks_transfer_volume() {
        let (mut meddle, trust, mut origin) = world();
        meddle
            .exchange(
                &trust,
                &PinSet::none(),
                &mut origin,
                get("https://api.example.com/small"),
                SimTime(0),
                ReusePolicy::app(),
            )
            .unwrap();
        let trace = meddle.finish_session(SimTime(1));
        let busy = trace.connections[0].busy_ms;
        // TCP RTT + TLS handshake (RTT + flights) + one exchange RTT.
        assert!(
            busy >= 3 * 60,
            "busy time should cover three round trips, got {busy}"
        );
        assert!(
            busy < 5_000,
            "busy time should stay sub-second-scale, got {busy}"
        );
    }

    #[test]
    fn passthrough_mode_records_but_does_not_decrypt() {
        let public = CertificateAuthority::new("PublicRoot");
        let mut upstream = TrustStore::new();
        upstream.add_root(&public.root);
        let cfg = MeddleConfig {
            intercept_tls: false,
            ..MeddleConfig::default()
        };
        let mut meddle = Meddle::new(cfg, upstream, &SimRng::new(7));
        let mut device_trust = TrustStore::new();
        device_trust.add_root(&public.root);
        let mut origin = TestOrigin::new("api.example.com");
        meddle
            .exchange(
                &device_trust,
                &PinSet::none(),
                &mut origin,
                get("https://api.example.com/secret"),
                SimTime(0),
                ReusePolicy::app(),
            )
            .unwrap();
        let trace = meddle.finish_session(SimTime(1));
        assert!(!trace.connections[0].decrypted);
        assert!(trace.transactions.is_empty());
        assert!(trace.connections[0].stats.total_bytes() > 0);
    }

    #[test]
    fn armed_none_plan_is_byte_identical_to_unarmed() {
        let run = |arm: bool| {
            let (mut meddle, trust, mut origin) = world();
            if arm {
                meddle.set_faults(FaultPlan::none(), &SimRng::new(99));
            }
            for i in 0..5 {
                meddle
                    .exchange(
                        &trust,
                        &PinSet::none(),
                        &mut origin,
                        get(&format!("https://api.example.com/item/{i}")),
                        SimTime(i * 100),
                        ReusePolicy::browser(),
                    )
                    .unwrap();
            }
            meddle.finish_session(SimTime(1_000))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn injected_tls_abort_is_recorded_and_retriable() {
        let (mut meddle, trust, mut origin) = world();
        let mut plan = FaultPlan::none();
        plan.tls_abort = 1.0;
        meddle.set_faults(plan, &SimRng::new(5));
        let err = meddle
            .exchange(
                &trust,
                &PinSet::none(),
                &mut origin,
                get("https://api.example.com/"),
                SimTime(0),
                ReusePolicy::app(),
            )
            .unwrap_err();
        assert_eq!(err, ExchangeError::TlsAbort);
        assert!(err.retriable());
        let trace = meddle.finish_session(SimTime(1));
        assert_eq!(trace.connections.len(), 1, "the dead flow is kept");
        assert_eq!(trace.connections[0].error, Some(FlowError::TlsAborted));
        assert_eq!(
            trace.connections[0].opaque_reason,
            Some(OpaqueReason::HandshakeAborted)
        );
        assert_eq!(trace.faults.tls_aborts, 1);
        assert_eq!(trace.aborted_connections(), 1);
    }

    #[test]
    fn injected_reset_kills_the_exchange_but_not_the_capture() {
        let (mut meddle, trust, mut origin) = world();
        let mut plan = FaultPlan::none();
        plan.connection_reset = 1.0;
        meddle.set_faults(plan, &SimRng::new(5));
        let err = meddle
            .exchange(
                &trust,
                &PinSet::none(),
                &mut origin,
                get("https://api.example.com/"),
                SimTime(0),
                ReusePolicy::app(),
            )
            .unwrap_err();
        assert_eq!(err, ExchangeError::Reset);
        let trace = meddle.finish_session(SimTime(1));
        assert_eq!(trace.connections[0].error, Some(FlowError::Reset));
        assert!(trace.transactions.is_empty());
        assert_eq!(trace.faults.connection_resets, 1);
    }

    #[test]
    fn injected_dns_failure_is_negatively_cached() {
        let (mut meddle, trust, mut origin) = world();
        let mut plan = FaultPlan::none();
        plan.dns_servfail = 1.0;
        meddle.set_faults(plan, &SimRng::new(5));
        for _ in 0..3 {
            let err = meddle
                .exchange(
                    &trust,
                    &PinSet::none(),
                    &mut origin,
                    get("https://api.example.com/"),
                    SimTime(0),
                    ReusePolicy::app(),
                )
                .unwrap_err();
            assert!(matches!(&err, ExchangeError::Dns(e) if e.kind == DnsErrorKind::ServFail));
            assert!(err.retriable());
        }
        let trace = meddle.finish_session(SimTime(1));
        assert_eq!(
            trace.faults.dns_servfail, 1,
            "retries re-fail from the negative cache, not fresh faults"
        );
        assert!(trace.connections.is_empty(), "nothing ever connected");
    }

    #[test]
    fn link_flap_window_blocks_exchanges() {
        let (mut meddle, trust, mut origin) = world();
        let mut plan = FaultPlan::none();
        plan.link_flap = 1.0;
        plan.link_flap_ms = 2_000;
        meddle.set_faults(plan, &SimRng::new(5));
        for t in [0u64, 500, 1_999] {
            assert_eq!(
                meddle
                    .exchange(
                        &trust,
                        &PinSet::none(),
                        &mut origin,
                        get("https://api.example.com/"),
                        SimTime(t),
                        ReusePolicy::app(),
                    )
                    .unwrap_err(),
                ExchangeError::LinkDown
            );
        }
        let trace = meddle.finish_session(SimTime(3_000));
        assert_eq!(trace.faults.link_flaps, 1, "one window swallowed all three");
    }

    #[test]
    fn device_without_proxy_ca_rejects_interception() {
        let public = CertificateAuthority::new("PublicRoot");
        let mut upstream = TrustStore::new();
        upstream.add_root(&public.root);
        let mut meddle = Meddle::new(MeddleConfig::default(), upstream, &SimRng::new(7));
        // Device trusts only public roots — proxy CA NOT installed.
        let mut device_trust = TrustStore::new();
        device_trust.add_root(&public.root);
        let mut origin = TestOrigin::new("api.example.com");
        let err = meddle.exchange(
            &device_trust,
            &PinSet::none(),
            &mut origin,
            get("https://api.example.com/"),
            SimTime(0),
            ReusePolicy::app(),
        );
        assert_eq!(err, Err(ExchangeError::UpstreamUntrusted));
    }
}
