//! HAR (HTTP Archive, v1.2) export.
//!
//! The original testbed's mitmproxy dumps interoperate with standard
//! traffic tooling via HAR; the reproduction offers the same escape
//! hatch. [`to_har`] converts a captured [`Trace`] into the HAR 1.2
//! object model (JSON-serializable via `appvsweb-json`), so any HAR
//! viewer can inspect a simulated session.
//!
//! [`Trace`]: crate::Trace

use crate::flow::Trace;
use appvsweb_httpsim::codec::base64_encode;

/// Top-level HAR document.
#[derive(Clone, Debug)]
pub struct Har {
    /// The single `log` object.
    pub log: HarLog,
}

/// The HAR `log` object.
#[derive(Clone, Debug)]
pub struct HarLog {
    /// Format version (always "1.2").
    pub version: String,
    /// Producer of the file.
    pub creator: HarCreator,
    /// One entry per HTTP transaction.
    pub entries: Vec<HarEntry>,
}

/// HAR `creator` metadata.
#[derive(Clone, Debug)]
pub struct HarCreator {
    /// Tool name.
    pub name: String,
    /// Tool version.
    pub version: String,
}

/// One request/response exchange.
#[derive(Clone, Debug)]
pub struct HarEntry {
    /// Start time. HAR wants ISO 8601; simulation time is an offset from
    /// the session epoch, rendered as a fake UTC instant.
    pub started_date_time: String,
    /// Total entry time in ms (simulated).
    pub time: f64,
    /// The request.
    pub request: HarRequest,
    /// The response.
    pub response: HarResponse,
    /// Which TCP connection carried it (HAR custom field convention).
    pub connection_id: String,
    /// Whether the transaction was plaintext HTTP (custom field).
    pub plaintext: bool,
    /// Why the exchange failed or arrived damaged (custom field, the
    /// `_error` convention browsers use for aborted requests). `None`
    /// for clean exchanges.
    pub error: Option<String>,
}

/// HAR request object.
#[derive(Clone, Debug)]
pub struct HarRequest {
    /// HTTP method.
    pub method: String,
    /// Absolute URL.
    pub url: String,
    /// Protocol version string.
    pub http_version: String,
    /// Headers.
    pub headers: Vec<HarNameValue>,
    /// Decomposed query string.
    pub query_string: Vec<HarNameValue>,
    /// Body, when present.
    pub post_data: Option<HarPostData>,
    /// Total request body size.
    pub body_size: i64,
}

/// HAR response object.
#[derive(Clone, Debug)]
pub struct HarResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub status_text: String,
    /// Protocol version string.
    pub http_version: String,
    /// Headers.
    pub headers: Vec<HarNameValue>,
    /// Body content.
    pub content: HarContent,
    /// Total response body size.
    pub body_size: i64,
}

/// A name/value pair (headers, query params).
#[derive(Clone, Debug)]
pub struct HarNameValue {
    /// Name.
    pub name: String,
    /// Value.
    pub value: String,
}

/// Request body.
#[derive(Clone, Debug)]
pub struct HarPostData {
    /// Content type.
    pub mime_type: String,
    /// Body text (base64 for binary, per HAR convention with encoding).
    pub text: String,
    /// `"base64"` when `text` is encoded.
    pub encoding: Option<String>,
}

/// Response body.
#[derive(Clone, Debug)]
pub struct HarContent {
    /// Decompressed size.
    pub size: i64,
    /// Content type.
    pub mime_type: String,
    /// Body text; omitted for large opaque bodies.
    pub text: Option<String>,
    /// `"base64"` when `text` is encoded.
    pub encoding: Option<String>,
}

/// Bodies larger than this are elided from HAR output (the simulated
/// content is filler bytes; eliding keeps exports reviewable).
const MAX_INLINE_BODY: usize = 4096;

fn name_values(headers: &appvsweb_httpsim::HeaderMap) -> Vec<HarNameValue> {
    headers
        .iter()
        .map(|(n, v)| HarNameValue {
            name: n.to_string(),
            value: v.to_string(),
        })
        .collect()
}

fn body_text(bytes: &[u8]) -> (Option<String>, Option<String>) {
    if bytes.is_empty() || bytes.len() > MAX_INLINE_BODY {
        return (None, None);
    }
    match std::str::from_utf8(bytes) {
        Ok(text) => (Some(text.to_string()), None),
        Err(_) => (Some(base64_encode(bytes)), Some("base64".to_string())),
    }
}

/// Render a simulated instant as an ISO-8601 timestamp offset from the
/// session epoch (chosen as the paper's study start date).
fn iso_time(millis: u64) -> String {
    // 2016-03-23T00:00:00Z + offset; sessions are minutes long, so only
    // the time-of-day component moves.
    let total_secs = millis / 1000;
    let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
    format!(
        "2016-03-23T{:02}:{:02}:{:02}.{:03}Z",
        h % 24,
        m,
        s,
        millis % 1000
    )
}

/// An error-status entry for a connection that died to an injected
/// fault before completing any exchange. HAR has no first-class abort
/// record, so this follows the browser devtools convention: status 0,
/// body sizes -1, and the cause in a custom `_error` field.
fn aborted_entry(conn: &crate::flow::ConnectionRecord) -> HarEntry {
    let scheme = if conn.tls { "https" } else { "http" };
    HarEntry {
        started_date_time: iso_time(conn.opened_at.as_millis()),
        time: conn.busy_ms as f64,
        request: HarRequest {
            method: "GET".into(),
            url: format!("{scheme}://{}:{}/", conn.host, conn.port),
            http_version: "".into(),
            headers: Vec::new(),
            query_string: Vec::new(),
            post_data: None,
            body_size: -1,
        },
        response: HarResponse {
            status: 0,
            status_text: "".into(),
            http_version: "".into(),
            headers: Vec::new(),
            content: HarContent {
                size: -1,
                mime_type: "x-unknown".into(),
                text: None,
                encoding: None,
            },
            body_size: -1,
        },
        connection_id: conn.id.to_string(),
        plaintext: !conn.tls,
        error: conn.error.map(|e| e.to_string()),
    }
}

/// Convert a trace to a HAR document. Completed transactions become
/// ordinary entries (flagged with `_error: "partial response"` when the
/// body arrived damaged); connections that died to a fault become
/// error-status entries instead of vanishing from the export.
pub fn to_har(trace: &Trace) -> Har {
    let mut keyed: Vec<(u64, u64, HarEntry)> = trace
        .transactions
        .iter()
        .map(|txn| {
            let req = &txn.request;
            let resp = &txn.response;
            let post_data = if req.body.is_empty() {
                None
            } else {
                let (text, encoding) = body_text(&req.body.bytes);
                Some(HarPostData {
                    mime_type: req
                        .body
                        .content_type
                        .clone()
                        .unwrap_or_else(|| "application/octet-stream".into()),
                    text: text.unwrap_or_default(),
                    encoding,
                })
            };
            let (text, encoding) = body_text(&resp.body.bytes);
            let entry = HarEntry {
                started_date_time: iso_time(txn.at.as_millis()),
                time: 1.0,
                request: HarRequest {
                    method: req.method.as_str().to_string(),
                    url: req.url.to_string(),
                    http_version: req.version.as_str().to_string(),
                    headers: name_values(&req.headers),
                    query_string: req
                        .url
                        .query_pairs()
                        .into_iter()
                        .map(|(name, value)| HarNameValue { name, value })
                        .collect(),
                    post_data,
                    body_size: req.body.len() as i64,
                },
                response: HarResponse {
                    status: resp.status.0,
                    status_text: resp.status.reason().to_string(),
                    http_version: resp.version.as_str().to_string(),
                    headers: name_values(&resp.headers),
                    content: HarContent {
                        size: resp.body.len() as i64,
                        mime_type: resp
                            .body
                            .content_type
                            .clone()
                            .unwrap_or_else(|| "application/octet-stream".into()),
                        text,
                        encoding,
                    },
                    body_size: resp.body.len() as i64,
                },
                connection_id: txn.connection_id.to_string(),
                plaintext: txn.plaintext,
                error: txn.partial.then(|| "partial response".to_string()),
            };
            (txn.at.as_millis(), txn.connection_id, entry)
        })
        .collect();
    for conn in trace.connections.iter().filter(|c| c.error.is_some()) {
        keyed.push((conn.opened_at.as_millis(), conn.id, aborted_entry(conn)));
    }
    keyed.sort_by_key(|&(at, id, _)| (at, id));
    let entries = keyed.into_iter().map(|(_, _, e)| e).collect();

    Har {
        log: HarLog {
            version: "1.2".into(),
            creator: HarCreator {
                name: "appvsweb-mitm".into(),
                version: env!("CARGO_PKG_VERSION").into(),
            },
            entries,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::HttpTransaction;
    use appvsweb_httpsim::{Body, Request, Response, Url};
    use appvsweb_netsim::SimTime;

    fn trace_with_one_txn() -> Trace {
        let mut t = Trace::new();
        let mut url = Url::parse("https://t.example.com/pixel").unwrap();
        url.push_query("uid", "42");
        t.transactions.push(HttpTransaction {
            connection_id: 7,
            host: "t.example.com".into(),
            plaintext: false,
            at: SimTime(65_250),
            request: Request::post(url, Body::form(&[("email", "a@b.com")])),
            response: Response::ok(Body::json(r#"{"ok":1}"#)),
            partial: false,
        });
        t
    }

    #[test]
    fn har_structure_and_fields() {
        let har = to_har(&trace_with_one_txn());
        assert_eq!(har.log.version, "1.2");
        assert_eq!(har.log.entries.len(), 1);
        let e = &har.log.entries[0];
        assert_eq!(e.request.method, "POST");
        assert!(e.request.url.starts_with("https://t.example.com/pixel"));
        assert_eq!(e.request.query_string[0].name, "uid");
        assert_eq!(
            e.request.post_data.as_ref().unwrap().text,
            "email=a%40b.com"
        );
        assert_eq!(e.response.status, 200);
        assert_eq!(e.connection_id, "7");
        assert_eq!(e.started_date_time, "2016-03-23T00:01:05.250Z");
    }

    #[test]
    fn large_bodies_are_elided() {
        let mut t = trace_with_one_txn();
        t.transactions[0].response.body = Body::binary(vec![0u8; 100_000], "video/mp4");
        let har = to_har(&t);
        let content = &har.log.entries[0].response.content;
        assert_eq!(content.size, 100_000);
        assert!(content.text.is_none());
    }

    #[test]
    fn binary_bodies_become_base64() {
        let mut t = trace_with_one_txn();
        t.transactions[0].response.body = Body::binary(vec![0xFF, 0xFE, 0x00], "image/gif");
        let har = to_har(&t);
        let content = &har.log.entries[0].response.content;
        assert_eq!(content.encoding.as_deref(), Some("base64"));
        assert_eq!(content.text.as_deref(), Some("//4A"));
    }

    #[test]
    fn aborted_and_partial_flows_become_error_entries() {
        use crate::flow::{ConnectionRecord, FlowError};
        use appvsweb_netsim::ConnectionStats;
        let mut t = trace_with_one_txn();
        t.transactions[0].partial = true;
        t.connections.push(ConnectionRecord {
            id: 3,
            host: "dead.example.net".into(),
            port: 443,
            tls: true,
            decrypted: false,
            opaque_reason: None,
            opened_at: SimTime(1_000),
            closed_at: Some(SimTime(1_500)),
            stats: ConnectionStats::default(),
            busy_ms: 500,
            transactions: 0,
            error: Some(FlowError::Reset),
        });
        let har = to_har(&t);
        assert_eq!(har.log.entries.len(), 2);
        // Entries sort chronologically: the abort (t=1s) leads the
        // transaction (t=65s).
        let aborted = &har.log.entries[0];
        assert_eq!(aborted.response.status, 0);
        assert_eq!(aborted.error.as_deref(), Some("connection reset"));
        assert!(aborted.request.url.contains("dead.example.net"));
        let partial = &har.log.entries[1];
        assert_eq!(partial.response.status, 200);
        assert_eq!(partial.error.as_deref(), Some("partial response"));
    }

    #[test]
    fn iso_time_rollover() {
        assert_eq!(iso_time(0), "2016-03-23T00:00:00.000Z");
        assert_eq!(iso_time(3_600_000 + 61_001), "2016-03-23T01:01:01.001Z");
    }
}

appvsweb_json::impl_json!(struct Har { log });
appvsweb_json::impl_json!(struct HarLog { version, creator, entries });
appvsweb_json::impl_json!(struct HarCreator { name, version });
appvsweb_json::impl_json!(struct HarEntry {
    started_date_time as "startedDateTime", time, request, response,
    connection_id as "_connectionId", plaintext as "_plaintext", error as "_error"
});
appvsweb_json::impl_json!(struct HarRequest {
    method, url, http_version as "httpVersion", headers, query_string as "queryString",
    post_data as "postData", body_size as "bodySize"
});
appvsweb_json::impl_json!(struct HarResponse {
    status, status_text as "statusText", http_version as "httpVersion", headers, content,
    body_size as "bodySize"
});
appvsweb_json::impl_json!(struct HarNameValue { name, value });
appvsweb_json::impl_json!(struct HarPostData { mime_type as "mimeType", text, encoding });
appvsweb_json::impl_json!(struct HarContent { size, mime_type as "mimeType", text, encoding });
