//! Background-traffic filtering (§3.2 "Filtering").
//!
//! Traces from real phones mix foreground app/browser traffic with OS
//! services. The methodology removes flows "to domains that are known to
//! be associated with OS services (e.g., Google Play Services and Apple
//! iCloud)"; this module is that step.

use crate::flow::Trace;
use appvsweb_netsim::Os;

/// Whether `host` belongs to an OS background service for `os`, or to an
/// extra caller-supplied service domain.
pub fn is_background_host(host: &str, os: Os, extra: &[&str]) -> bool {
    let host: std::borrow::Cow<'_, str> = if host.bytes().any(|b| b.is_ascii_uppercase()) {
        host.to_ascii_lowercase().into()
    } else {
        host.into()
    };
    let dot_suffix_of = |bg: &str| {
        host.len() > bg.len()
            && host.ends_with(bg)
            && host.as_bytes()[host.len() - bg.len() - 1] == b'.'
    };
    os.background_hosts()
        .iter()
        .chain(extra.iter())
        .any(|bg| host == *bg || dot_suffix_of(bg))
}

/// Remove background-service traffic from a trace, returning the number
/// of connections removed. `extra` lists additional domains to strip
/// beyond the OS defaults.
pub fn strip_background(trace: &mut Trace, os: Os, extra: &[&str]) -> usize {
    let doomed: Vec<u64> = trace
        .connections
        .iter()
        .filter(|c| is_background_host(&c.host, os, extra))
        .map(|c| c.id)
        .collect();
    let before = trace.connections.len();
    trace.connections.retain(|c| !doomed.contains(&c.id));
    trace
        .transactions
        .retain(|t| !doomed.contains(&t.connection_id));
    before - trace.connections.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{ConnectionRecord, HttpTransaction};
    use appvsweb_httpsim::{Body, Request, Response, Url};
    use appvsweb_netsim::{ConnectionStats, SimTime};

    fn conn(id: u64, host: &str) -> ConnectionRecord {
        ConnectionRecord {
            id,
            host: host.into(),
            port: 443,
            tls: true,
            decrypted: true,
            opaque_reason: None,
            opened_at: SimTime(0),
            closed_at: None,
            stats: ConnectionStats::default(),
            busy_ms: 0,
            transactions: 1,
            error: None,
        }
    }

    fn txn(conn_id: u64, host: &str) -> HttpTransaction {
        HttpTransaction {
            connection_id: conn_id,
            host: host.into(),
            plaintext: false,
            at: SimTime(0),
            request: Request::get(Url::parse(&format!("https://{host}/")).unwrap()),
            response: Response::ok(Body::text("x")),
            partial: false,
        }
    }

    #[test]
    fn background_host_matching() {
        assert!(is_background_host("play.googleapis.com", Os::Android, &[]));
        assert!(is_background_host(
            "sub.play.googleapis.com",
            Os::Android,
            &[]
        ));
        assert!(!is_background_host("play.googleapis.com", Os::Ios, &[]));
        assert!(is_background_host("push.apple.com", Os::Ios, &[]));
        assert!(is_background_host(
            "ota.vendor.example",
            Os::Ios,
            &["ota.vendor.example"]
        ));
        assert!(!is_background_host("api.yelp.com", Os::Android, &[]));
    }

    #[test]
    fn strip_removes_connections_and_their_transactions() {
        let mut trace = Trace::new();
        trace.connections.push(conn(1, "api.yelp.com"));
        trace.connections.push(conn(2, "mtalk.google.com"));
        trace.transactions.push(txn(1, "api.yelp.com"));
        trace.transactions.push(txn(2, "mtalk.google.com"));
        let removed = strip_background(&mut trace, Os::Android, &[]);
        assert_eq!(removed, 1);
        assert_eq!(trace.connections.len(), 1);
        assert_eq!(trace.transactions.len(), 1);
        assert_eq!(trace.connections[0].host, "api.yelp.com");
    }

    #[test]
    fn strip_is_noop_for_clean_trace() {
        let mut trace = Trace::new();
        trace.connections.push(conn(1, "api.yelp.com"));
        assert_eq!(strip_background(&mut trace, Os::Ios, &[]), 0);
        assert_eq!(trace.connections.len(), 1);
    }
}
