//! # appvsweb-mitm
//!
//! The measurement testbed: a reproduction of **Meddle** (VPN-based
//! traffic interposition) combined with **mitmproxy** (TLS interception),
//! which is how the original study captured "both HTTP and the plaintext
//! content of HTTPS flows" (§3.2).
//!
//! The device routes every connection through a [`Meddle`] tunnel. For
//! HTTPS, the tunnel forges a leaf certificate under its own CA (which the
//! test device trusts, because the methodology installs it) and performs
//! two handshakes — one facing the device, one facing the real origin.
//! Services that pin their certificates defeat this, fail the device-side
//! handshake, and show up as undecrypted connections; that is precisely
//! why Facebook and Twitter were excluded from the paper's service set.
//!
//! Capture output is a [`Trace`]: per-TCP-connection records (feeding the
//! paper's flow and byte counts, Figures 1b/1c) and per-HTTP-transaction
//! records (feeding PII detection). [`filter::strip_background`]
//! implements the §3.2 filtering step that removes OS-service traffic
//! (Google Play Services, iCloud, …) from the trace, and [`har::to_har`]
//! exports captures as standard HAR 1.2 for external tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filter;
pub mod flow;
pub mod har;
pub mod proxy;

pub use flow::{ConnectionRecord, HttpTransaction, Trace};
pub use proxy::{ExchangeError, Meddle, MeddleConfig, OriginServer, ReusePolicy};
