//! Captured traffic records.
//!
//! A [`Trace`] is what one test session leaves behind: the set of TCP
//! connections that crossed the tunnel, and the HTTP transactions the
//! proxy could decrypt. Both layers are kept because the paper's metrics
//! need both: flow/byte counts come from connections, PII detection from
//! transactions.

use appvsweb_httpsim::{Request, Response};
use appvsweb_netsim::{ConnectionStats, FaultCounts, SimTime};

/// Why a connection's payload was not readable, when it wasn't.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpaqueReason {
    /// The client aborted the device-side handshake because the forged
    /// chain violated its pin set.
    PinViolation,
    /// The proxy could not verify the upstream origin.
    UpstreamUntrusted,
    /// The handshake died for a network-level reason (fault injection),
    /// not a trust decision.
    HandshakeAborted,
}

/// How an aborted flow died. Live captures are full of connections that
/// carried no completed exchange; recording the cause (instead of
/// dropping the flow) is what lets the health ledger and HAR export
/// account for every connection the tunnel saw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// Packets lost until the client gave up.
    Timeout,
    /// TCP reset mid-exchange.
    Reset,
    /// TLS handshake aborted (beyond certificate/pin failures).
    TlsAborted,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Timeout => f.write_str("connection timed out"),
            FlowError::Reset => f.write_str("connection reset"),
            FlowError::TlsAborted => f.write_str("tls handshake aborted"),
        }
    }
}

/// One TCP connection as seen by the tunnel.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnectionRecord {
    /// Tunnel-assigned connection id.
    pub id: u64,
    /// Destination host name (from SNI or the Host header).
    pub host: String,
    /// Destination port.
    pub port: u16,
    /// Whether the connection carried TLS.
    pub tls: bool,
    /// Whether the proxy could read the payload (always true for
    /// plaintext HTTP; true for HTTPS only when interception succeeded).
    pub decrypted: bool,
    /// Why payload was unreadable, if it was.
    pub opaque_reason: Option<OpaqueReason>,
    /// When the connection opened.
    pub opened_at: SimTime,
    /// When it closed (a session close sweep stamps this).
    pub closed_at: Option<SimTime>,
    /// Byte/packet counters, including TLS record overhead.
    pub stats: ConnectionStats,
    /// Cumulative busy time on the access link (RTTs + serialization),
    /// from the tunnel's link model.
    pub busy_ms: u64,
    /// Number of HTTP transactions carried (0 for opaque connections).
    pub transactions: u32,
    /// How the flow died, when a fault killed it (`None` = clean close).
    pub error: Option<FlowError>,
}

/// One decrypted HTTP request/response exchange.
#[derive(Clone, Debug, PartialEq)]
pub struct HttpTransaction {
    /// The connection that carried this exchange.
    pub connection_id: u64,
    /// Destination host (kept denormalized for convenient scanning).
    pub host: String,
    /// Whether the exchange travelled in plaintext (HTTP, not HTTPS).
    pub plaintext: bool,
    /// When the request entered the tunnel.
    pub at: SimTime,
    /// The request as the origin received it.
    pub request: Request,
    /// The origin's response.
    pub response: Response,
    /// Whether the response arrived damaged (body short of its declared
    /// `Content-Length`, or broken chunked framing). Partial exchanges
    /// are kept — a truncated capture still carries leaks — but flagged
    /// so analysis can weigh them.
    pub partial: bool,
}

impl HttpTransaction {
    /// Raw wire bytes of the request — what the PII detectors scan.
    /// The flow record is the materialization boundary: bytes become
    /// owned here, sized exactly via the arithmetic wire length.
    pub fn request_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.request.wire_len());
        appvsweb_httpsim::wire::serialize_request_into(&self.request, &mut buf);
        buf
    }
}

/// Everything captured during one test session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// All connections, in open order.
    pub connections: Vec<ConnectionRecord>,
    /// All decrypted transactions, in time order.
    pub transactions: Vec<HttpTransaction>,
    /// Ledger of injected faults observed during the session (tunnel
    /// and origin side combined).
    pub faults: FaultCounts,
    /// Client retries spent recovering from transient failures.
    pub retries: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unique destination hosts across all connections.
    pub fn hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self.connections.iter().map(|c| c.host.clone()).collect();
        hosts.sort();
        hosts.dedup();
        hosts
    }

    /// Connections to `host`.
    pub fn connections_to<'a>(
        &'a self,
        host: &'a str,
    ) -> impl Iterator<Item = &'a ConnectionRecord> + 'a {
        self.connections.iter().filter(move |c| c.host == host)
    }

    /// Total payload bytes in the trace.
    pub fn total_bytes(&self) -> u64 {
        self.connections.iter().map(|c| c.stats.total_bytes()).sum()
    }

    /// Merge another trace into this one (used when a session records app
    /// and OS traffic through the same tunnel).
    pub fn merge(&mut self, other: Trace) {
        self.connections.extend(other.connections);
        self.transactions.extend(other.transactions);
        self.connections.sort_by_key(|c| (c.opened_at, c.id));
        self.transactions.sort_by_key(|t| (t.at, t.connection_id));
        self.faults.merge(&other.faults);
        self.retries += other.retries;
    }

    /// Connections that died to an injected fault.
    pub fn aborted_connections(&self) -> usize {
        self.connections
            .iter()
            .filter(|c| c.error.is_some())
            .count()
    }

    /// Transactions whose response arrived damaged.
    pub fn partial_transactions(&self) -> usize {
        self.transactions.iter().filter(|t| t.partial).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_netsim::SimTime;

    fn conn(id: u64, host: &str, opened: u64) -> ConnectionRecord {
        ConnectionRecord {
            id,
            host: host.into(),
            port: 443,
            tls: true,
            decrypted: true,
            opaque_reason: None,
            opened_at: SimTime(opened),
            closed_at: None,
            stats: ConnectionStats::default(),
            busy_ms: 0,
            transactions: 0,
            error: None,
        }
    }

    #[test]
    fn hosts_dedup_sorted() {
        let mut t = Trace::new();
        t.connections.push(conn(1, "b.com", 0));
        t.connections.push(conn(2, "a.com", 1));
        t.connections.push(conn(3, "b.com", 2));
        assert_eq!(t.hosts(), vec!["a.com".to_string(), "b.com".to_string()]);
        assert_eq!(t.connections_to("b.com").count(), 2);
    }

    #[test]
    fn merge_preserves_time_order() {
        let mut t1 = Trace::new();
        t1.connections.push(conn(1, "a.com", 10));
        let mut t2 = Trace::new();
        t2.connections.push(conn(2, "b.com", 5));
        t1.merge(t2);
        assert_eq!(t1.connections[0].host, "b.com");
    }
}

appvsweb_json::impl_json!(
    enum OpaqueReason {
        PinViolation,
        UpstreamUntrusted,
        HandshakeAborted,
    }
);
appvsweb_json::impl_json!(
    enum FlowError {
        Timeout,
        Reset,
        TlsAborted,
    }
);
appvsweb_json::impl_json!(struct ConnectionRecord {
    id, host, port, tls, decrypted, opaque_reason, opened_at, closed_at, stats, busy_ms,
    transactions, error
});
appvsweb_json::impl_json!(struct HttpTransaction { connection_id, host, plaintext, at, request, response, partial });
appvsweb_json::impl_json!(struct Trace { connections, transactions, faults, retries });
