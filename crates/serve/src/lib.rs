//! # appvsweb-serve
//!
//! The supervised resident service (`repro serve`): the paper's
//! "services change over time, so keep measuring" story turned into a
//! crash-recoverable daemon.
//!
//! * [`job`] — campaign job specs, lowered onto `core::study`'s
//!   queue/worker substrate; retry backoff is the *same*
//!   `RetryPolicy` the session layer uses (re-exported, not copied)
//! * [`queue`] — bounded admission: admit, load-shed to reduced cell
//!   coverage, or reject at the hard cap
//! * [`wal`] — the append-only journal of job state transitions; one
//!   self-delimiting JSON line per record, torn-tail tolerant
//! * [`state`] — the materialized state as a pure fold of the WAL
//!   (live apply ≡ recovery replay, by construction), plus periodic
//!   checkpoints
//! * [`runner`] — the supervisor: rounds of panic-isolated cell
//!   attempts, sim-clock heartbeat reaping, capped-backoff retry,
//!   poison-cell quarantine into the `StudyHealth` ledger
//! * [`service`] — the server: WAL-first submit/run orchestration,
//!   revision building, file-backed recovery
//! * [`http`] — a minimal, fuzz-hardened std-only HTTP/1.1 surface
//!   (submit/status/report/health/drift)
//! * [`fuzz`] — the `serve` fuzz target over the parser and the
//!   journal codec
//!
//! Everything is sim-clock driven and byte-deterministic: the same
//! submissions produce the same journal, state, revisions, and drift
//! alarms at any worker count, and killing the process at any journal
//! record boundary recovers the exact same state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod http;
pub mod job;
pub mod queue;
pub mod runner;
pub mod service;
pub mod state;
pub mod wal;

pub use job::{JobSpec, RetryPolicy};
pub use queue::{Admission, QueueConfig};
pub use service::{recover, FileWal, MemWal, ServeDir, ServeError, Server, WalSink};
pub use state::{Checkpoint, JobEntry, JobStatus, Revision, ServeState};
pub use wal::{replay_lines, WalError, WalKind, WalRecord};

use appvsweb_analysis::drift::{diff_profiles, DriftAlarm};

/// Drift alarms for a new revision against its predecessor in the same
/// monitoring series (none when it has no predecessor). Deterministic,
/// so [`ServeState::apply`] can derive alarms during replay instead of
/// journaling them.
pub fn drift_alarms_for(prev: Option<&Revision>, new: &Revision) -> Vec<DriftAlarm> {
    match prev {
        Some(prev) => diff_profiles(&prev.profiles, &new.profiles),
        None => Vec::new(),
    }
}
