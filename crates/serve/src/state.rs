//! The service's materialized state: a pure fold over the WAL.
//!
//! [`ServeState::apply`] is the **only** way state changes — the live
//! server appends a record to the journal and then applies it; recovery
//! replays the journal through the same function. Because `apply` is a
//! pure, total function of `(state, record)`, live and recovered state
//! can never disagree (DESIGN §9).
//!
//! Crash-resume convergence is carried by two invariants:
//!
//! 1. **Only `Finish`/`JobFail` advance the sim clock** (by the job's
//!    deterministic simulated cost). Mid-job records (`Start`, `Reap`,
//!    `Quarantine`, `DeadlineSkip`) cost nothing, so replaying a
//!    half-finished job and then re-running it lands on the same clock.
//! 2. **Mid-job records only touch job-scoped transients** (reap /
//!    quarantine / skip counters), and [`ServeState::requeue_inflight`]
//!    resets those when it re-queues an interrupted job — the re-run
//!    emits them again, converging on the uninterrupted totals.

use crate::drift_alarms_for;
use crate::job::JobSpec;
use crate::wal::{WalKind, WalRecord};
use appvsweb_analysis::drift::{DriftAlarm, HeadlineStats, LeakProfile};
use appvsweb_analysis::StudyHealth;

/// Simulated milliseconds the admission path charges per submission
/// (the cost of validating + journaling a spec).
pub const SUBMIT_TICK_MS: u64 = 10;

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    #[default]
    Queued,
    /// A worker is executing it.
    Running,
    /// Completed; its revision is in the store.
    Done,
    /// Failed as a whole.
    Failed,
    /// Refused at admission (queue hard cap).
    Rejected,
}

appvsweb_json::impl_json!(
    enum JobStatus {
        Queued,
        Running,
        Done,
        Failed,
        Rejected,
    }
);

/// One job's ledger entry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobEntry {
    /// Stable job id (allocation order).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle position.
    pub status: JobStatus,
    /// Effective coverage stride after load-shedding (1 = full).
    pub shed_stride: u32,
    /// Sim-clock time of admission.
    pub submitted_ms: u64,
    /// Sim-clock time of completion/failure (0 until then).
    pub finished_ms: u64,
    /// Revision id produced by this job, if finished.
    pub revision: Option<u64>,
    /// Workers the supervisor reaped while running this job.
    /// Job-scoped transient: reset by [`ServeState::requeue_inflight`].
    pub reaps: u32,
    /// Cells quarantined as poison. Job-scoped transient.
    pub quarantined: u32,
    /// Cells skipped past the deadline budget. Job-scoped transient.
    pub deadline_skipped: u32,
    /// Failure reason (`Failed`/`Rejected`).
    pub error: String,
}

appvsweb_json::impl_json!(struct JobEntry {
    id,
    spec,
    status,
    shed_stride,
    submitted_ms,
    finished_ms,
    revision,
    reaps,
    quarantined,
    deadline_skipped,
    error,
});

/// One completed campaign revision: the drift-relevant distillation of
/// the study a job produced, stored durably (it rides inside the
/// `Finish` WAL record).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Revision {
    /// Stable revision id (allocation order).
    pub id: u64,
    /// The job that produced it.
    pub job: u64,
    /// Monitoring-series name (from the spec).
    pub name: String,
    /// Campaign seed.
    pub seed: u64,
    /// Sim-clock completion time.
    pub at_ms: u64,
    /// The four golden headline rates.
    pub headlines: HeadlineStats,
    /// Per-cell leak profiles, in study cell order.
    pub profiles: Vec<LeakProfile>,
    /// The campaign's health ledger (reaps/quarantines included).
    pub health: StudyHealth,
    /// MD5 of the canonical profile JSON — a cheap byte-identity
    /// witness two revisions can be compared by.
    pub digest: String,
}

appvsweb_json::impl_json!(struct Revision {
    id,
    job,
    name,
    seed,
    at_ms,
    headlines,
    profiles,
    health,
    digest,
});

/// The whole service state. Everything is reconstructible from
/// checkpoint + WAL suffix; JSON-serializable for checkpoints and the
/// `/health` endpoint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeState {
    /// The service's sim clock, milliseconds.
    pub clock_ms: u64,
    /// Next job id to allocate.
    pub next_job: u64,
    /// Queued job ids, execution order.
    pub queued: Vec<u64>,
    /// Every job ever admitted or rejected, by id.
    pub jobs: Vec<JobEntry>,
    /// Completed revisions, by id.
    pub revisions: Vec<Revision>,
    /// Drift alarms, in (revision, cell, kind) emission order.
    pub alarms: Vec<DriftAlarm>,
}

appvsweb_json::impl_json!(struct ServeState {
    clock_ms,
    next_job,
    queued,
    jobs,
    revisions,
    alarms,
});

impl ServeState {
    /// Look up a job entry.
    pub fn job(&self, id: u64) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.id == id)
    }

    fn job_mut(&mut self, id: u64) -> Option<&mut JobEntry> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    /// The newest revision for a monitoring-series name.
    pub fn latest_revision(&self, name: &str) -> Option<&Revision> {
        self.revisions.iter().rev().find(|r| r.name == name)
    }

    /// Apply one WAL record. Pure and total: unknown job ids are
    /// ignored (a checkpointed prefix may reference jobs the suffix
    /// re-describes), and every arithmetic saturates.
    pub fn apply(&mut self, rec: &WalRecord) {
        appvsweb_cover::cover!();
        match rec.kind {
            WalKind::Submit | WalKind::Shed | WalKind::Reject => {
                // Admission decisions are *in* the WAL: the live server
                // decided once; replay only re-applies.
                if self.job(rec.job).is_some() {
                    return;
                }
                let spec = rec.spec.clone().unwrap_or_default();
                let status = match rec.kind {
                    WalKind::Reject => JobStatus::Rejected,
                    _ => JobStatus::Queued,
                };
                self.clock_ms = self.clock_ms.saturating_add(SUBMIT_TICK_MS);
                self.jobs.push(JobEntry {
                    id: rec.job,
                    spec,
                    status,
                    shed_stride: rec.stride.max(1),
                    submitted_ms: self.clock_ms,
                    error: match rec.kind {
                        WalKind::Reject => rec.detail.clone(),
                        _ => String::new(),
                    },
                    ..JobEntry::default()
                });
                if status == JobStatus::Queued {
                    self.queued.push(rec.job);
                }
                self.next_job = self.next_job.max(rec.job.saturating_add(1));
            }
            WalKind::Start => {
                self.queued.retain(|&id| id != rec.job);
                if let Some(job) = self.job_mut(rec.job) {
                    job.status = JobStatus::Running;
                }
            }
            WalKind::Reap => {
                if let Some(job) = self.job_mut(rec.job) {
                    job.reaps = job.reaps.saturating_add(1);
                }
            }
            WalKind::Quarantine => {
                if let Some(job) = self.job_mut(rec.job) {
                    job.quarantined = job.quarantined.saturating_add(1);
                }
            }
            WalKind::DeadlineSkip => {
                if let Some(job) = self.job_mut(rec.job) {
                    job.deadline_skipped = job.deadline_skipped.saturating_add(rec.count);
                }
            }
            WalKind::Finish => {
                self.clock_ms = self.clock_ms.saturating_add(rec.cost_ms);
                let rev_id = self.revisions.len() as u64;
                let clock = self.clock_ms;
                if let Some(job) = self.job_mut(rec.job) {
                    job.status = JobStatus::Done;
                    job.finished_ms = clock;
                    job.revision = Some(rev_id);
                }
                if let Some(rev) = &rec.revision {
                    let mut rev = rev.clone();
                    rev.id = rev_id;
                    rev.job = rec.job;
                    rev.at_ms = clock;
                    // Drift alarms are *derived*, not journaled: the
                    // previous revision is already in the state, and
                    // the diff is deterministic, so replay recomputes
                    // the identical alarm list.
                    let prev = self
                        .revisions
                        .iter()
                        .rev()
                        .find(|r| r.name == rev.name && r.id != rev_id);
                    self.alarms.extend(drift_alarms_for(prev, &rev));
                    self.revisions.push(rev);
                }
            }
            WalKind::JobFail => {
                self.clock_ms = self.clock_ms.saturating_add(rec.cost_ms);
                let clock = self.clock_ms;
                if let Some(job) = self.job_mut(rec.job) {
                    job.status = JobStatus::Failed;
                    job.finished_ms = clock;
                    job.error = rec.detail.clone();
                }
            }
        }
    }

    /// Re-queue jobs that were mid-flight when the process died:
    /// `Running` entries go back to `Queued` (original submit order)
    /// with their job-scoped transients reset, so the re-run's
    /// re-emitted records converge on the uninterrupted totals.
    pub fn requeue_inflight(&mut self) {
        let mut requeued = Vec::new();
        for job in &mut self.jobs {
            if job.status == JobStatus::Running {
                job.status = JobStatus::Queued;
                job.reaps = 0;
                job.quarantined = 0;
                job.deadline_skipped = 0;
                job.error = String::new();
                requeued.push(job.id);
            }
        }
        if !requeued.is_empty() {
            self.queued.extend(requeued);
            self.queued.sort_unstable();
            self.queued.dedup();
        }
    }
}

/// A periodic snapshot: the state as of `wal_seq`, so recovery only
/// replays the journal suffix written after it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Sequence number of the last record folded into `state`.
    pub wal_seq: u64,
    /// The materialized state at that point.
    pub state: ServeState,
}

appvsweb_json::impl_json!(struct Checkpoint { wal_seq, state });

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_json::{FromJson, ToJson};

    fn submit(seq: u64, job: u64) -> WalRecord {
        let mut r = WalRecord::new(seq, WalKind::Submit, job);
        r.spec = Some(JobSpec::default());
        r
    }

    #[test]
    fn submit_start_finish_lifecycle() {
        let mut s = ServeState::default();
        s.apply(&submit(1, 0));
        assert_eq!(s.queued, vec![0]);
        assert_eq!(s.clock_ms, SUBMIT_TICK_MS);

        s.apply(&WalRecord::new(2, WalKind::Start, 0));
        assert!(s.queued.is_empty());
        assert_eq!(s.job(0).map(|j| j.status), Some(JobStatus::Running));

        let mut fin = WalRecord::new(3, WalKind::Finish, 0);
        fin.cost_ms = 1000;
        fin.revision = Some(Revision {
            name: "campaign".to_string(),
            ..Revision::default()
        });
        s.apply(&fin);
        assert_eq!(s.job(0).map(|j| j.status), Some(JobStatus::Done));
        assert_eq!(s.clock_ms, SUBMIT_TICK_MS + 1000);
        assert_eq!(s.revisions.len(), 1);
        assert_eq!(s.latest_revision("campaign").map(|r| r.id), Some(0));
    }

    #[test]
    fn requeue_resets_job_scoped_transients() {
        let mut s = ServeState::default();
        s.apply(&submit(1, 0));
        s.apply(&WalRecord::new(2, WalKind::Start, 0));
        s.apply(&WalRecord::new(3, WalKind::Reap, 0));
        s.apply(&WalRecord::new(4, WalKind::Quarantine, 0));
        assert_eq!(s.job(0).map(|j| (j.reaps, j.quarantined)), Some((1, 1)));

        s.requeue_inflight();
        assert_eq!(s.queued, vec![0]);
        assert_eq!(s.job(0).map(|j| j.status), Some(JobStatus::Queued));
        assert_eq!(s.job(0).map(|j| (j.reaps, j.quarantined)), Some((0, 0)));
        // Clock unchanged: mid-job records cost nothing.
        assert_eq!(s.clock_ms, SUBMIT_TICK_MS);
    }

    #[test]
    fn rejected_jobs_never_queue() {
        let mut s = ServeState::default();
        let mut r = submit(1, 0);
        r.kind = WalKind::Reject;
        r.detail = "queue full".to_string();
        s.apply(&r);
        assert!(s.queued.is_empty());
        assert_eq!(s.job(0).map(|j| j.status), Some(JobStatus::Rejected));
        assert_eq!(s.job(0).map(|j| j.error.as_str()), Some("queue full"));
    }

    #[test]
    fn state_roundtrips_through_json() {
        let mut s = ServeState::default();
        s.apply(&submit(1, 0));
        s.apply(&WalRecord::new(2, WalKind::Start, 0));
        let back = ServeState::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(back, s);
        let cp = Checkpoint {
            wal_seq: 2,
            state: s,
        };
        let back = Checkpoint::from_json(&cp.to_json()).expect("checkpoint");
        assert_eq!(back, cp);
    }
}
