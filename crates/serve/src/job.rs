//! Campaign job specifications.
//!
//! A **job** is one campaign the resident service is asked to run: a
//! named, seeded study over some selection of the paper's cell grid.
//! The spec is what `POST /submit` carries, what the WAL's `Submit`
//! record persists, and what [`to_study_config`](JobSpec::to_study_config)
//! lowers onto the refactored `core::study` queue/worker substrate.
//!
//! Retry backoff deliberately has **one** implementation in the whole
//! workspace: the supervisor reuses [`RetryPolicy`] from
//! `services::session` (re-exported here), so the PR 4 property suite
//! covers serve-mode backoff too.

use appvsweb_core::study::{CellSelection, StudyConfig, StudyConfigError};
use appvsweb_core::CellId;
use appvsweb_netsim::{FaultPlan, SimDuration};
// The single backoff implementation in the workspace (satellite 2):
// serve-mode retries draw from the same type the session layer uses,
// so the PR 4 property suite covers this path too.
pub use appvsweb_services::RetryPolicy;

/// One submitted campaign job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Monitoring-series name; successive revisions with the same name
    /// are diffed for drift.
    pub name: String,
    /// Campaign seed; the revision is a pure function of the spec.
    pub seed: u64,
    /// Session duration per cell, simulated minutes.
    pub minutes: u64,
    /// Fault-plan preset name (`none`/`light`/`moderate`/`heavy`).
    pub faults: String,
    /// Train and use the ReCon classifier.
    pub use_recon: bool,
    /// Explicit cells to run; empty = the whole (possibly strided) grid.
    pub cells: Vec<CellId>,
    /// Grid stride when `cells` is empty (1 = full grid).
    pub stride: u32,
    /// Simulated-ms budget for the whole job; cells past it are
    /// deadline-skipped. 0 = unlimited.
    pub deadline_ms: u64,
    /// Supervised retries per cell before quarantine (attempts − 1).
    pub max_retries: u32,
    /// Cell labels whose first attempt stalls (stops heartbeating) —
    /// deterministic stuck-worker injection for the supervisor tests.
    pub stall_cells: Vec<String>,
    /// Per-attempt injected-panic probability override (> 0 replaces
    /// the preset's `cell_panic`); 1.0 makes every attempt panic, the
    /// poison-job case the quarantine property test drives.
    pub cell_panic: f64,
}

appvsweb_json::impl_json!(struct JobSpec {
    name,
    seed,
    minutes,
    faults,
    use_recon,
    cells,
    stride,
    deadline_ms,
    max_retries,
    stall_cells,
    cell_panic,
});

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "campaign".to_string(),
            seed: 7,
            minutes: 4,
            faults: "none".to_string(),
            use_recon: true,
            cells: Vec::new(),
            stride: 1,
            deadline_ms: 0,
            max_retries: 2,
            stall_cells: Vec::new(),
            cell_panic: 0.0,
        }
    }
}

impl JobSpec {
    /// The cell selection this spec asks for, before any load-shedding.
    pub fn selection(&self) -> CellSelection {
        if !self.cells.is_empty() {
            CellSelection::Explicit(self.cells.clone())
        } else if self.stride > 1 {
            CellSelection::Strided(self.stride)
        } else {
            CellSelection::All
        }
    }

    /// Lower onto a `core::study` configuration, thinning coverage by
    /// `shed_stride` when the admission controller load-shed the job.
    ///
    /// Shedding an explicit cell list keeps every `shed_stride`-th cell;
    /// shedding a grid multiplies the stride. Validation is the same
    /// structured [`StudyConfigError`] path `run_study_checked` uses.
    pub fn to_study_config(
        &self,
        workers: usize,
        shed_stride: u32,
    ) -> Result<StudyConfig, StudyConfigError> {
        if self.minutes == 0 {
            return Err(StudyConfigError::ZeroDuration);
        }
        let shed = shed_stride.max(1);
        let cells = if !self.cells.is_empty() {
            if shed > 1 {
                CellSelection::Explicit(self.cells.iter().step_by(shed as usize).cloned().collect())
            } else {
                CellSelection::Explicit(self.cells.clone())
            }
        } else {
            let stride = self.stride.max(1).saturating_mul(shed);
            if stride > 1 {
                CellSelection::Strided(stride)
            } else {
                CellSelection::All
            }
        };
        let mut faults = FaultPlan::preset(&self.faults)
            .ok_or_else(|| StudyConfigError::BadFaultPreset(self.faults.clone()))?;
        if self.cell_panic > 0.0 {
            faults.cell_panic = self.cell_panic.min(1.0);
        }
        let cfg = StudyConfig {
            seed: self.seed,
            duration: SimDuration::from_mins(self.minutes),
            workers: workers.max(1),
            use_recon: self.use_recon,
            faults,
            cell_attempts: self.max_retries.saturating_add(1),
            cells,
        };
        cfg.validate(&appvsweb_services::Catalog::paper())?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appvsweb_json::{FromJson, ToJson};
    use appvsweb_netsim::Os;
    use appvsweb_services::Medium;

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = JobSpec {
            cells: vec![CellId::new("abc", Os::Android, Medium::App)],
            stall_cells: vec!["abc/Android/App".to_string()],
            ..JobSpec::default()
        };
        let back = JobSpec::from_json(&spec.to_json()).expect("roundtrip");
        assert_eq!(back, spec);
    }

    #[test]
    fn shedding_thins_explicit_cell_lists() {
        let catalog = appvsweb_services::Catalog::paper();
        let ids: Vec<CellId> = catalog
            .testable_on(Os::Android)
            .take(4)
            .map(|s| CellId::new(s.id, Os::Android, Medium::App))
            .collect();
        let spec = JobSpec {
            cells: ids,
            ..JobSpec::default()
        };
        let full = spec.to_study_config(1, 1).expect("full");
        let shed = spec.to_study_config(1, 2).expect("shed");
        let len = |cfg: &StudyConfig| match &cfg.cells {
            CellSelection::Explicit(v) => v.len(),
            other => panic!("expected explicit selection, got {other:?}"),
        };
        assert_eq!(len(&full), 4);
        assert_eq!(len(&shed), 2);
    }

    #[test]
    fn shedding_multiplies_grid_strides() {
        let spec = JobSpec {
            stride: 3,
            ..JobSpec::default()
        };
        let cfg = spec.to_study_config(1, 2).expect("strided");
        assert_eq!(cfg.cells, CellSelection::Strided(6));
    }

    #[test]
    fn bad_fault_preset_and_zero_minutes_are_structured_errors() {
        let spec = JobSpec {
            faults: "nope".to_string(),
            ..JobSpec::default()
        };
        assert!(spec.to_study_config(1, 1).is_err());
        let spec = JobSpec {
            minutes: 0,
            ..JobSpec::default()
        };
        assert!(matches!(
            spec.to_study_config(1, 1),
            Err(StudyConfigError::ZeroDuration)
        ));
    }
}
