//! The append-only write-ahead journal of job state transitions.
//!
//! Every change the resident service makes to its [`ServeState`] is
//! first appended here as one compact-JSON line, then applied; recovery
//! replays the same lines through the same pure
//! [`ServeState::apply`](crate::state::ServeState::apply) fold, so live
//! state and recovered state agree **by construction** — the argument
//! DESIGN §9 spells out. Records are self-delimiting (one per line), so
//! a crash can only ever lose a *suffix*: replay tolerates a torn final
//! line (no trailing newline, or an unparseable tail) and treats a
//! malformed *interior* line as corruption.
//!
//! [`ServeState`]: crate::state::ServeState

use crate::job::JobSpec;
use crate::state::Revision;
use appvsweb_json::{FromJson, ToJson};
use std::fmt;

/// What kind of transition a [`WalRecord`] logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WalKind {
    /// A job was admitted at full coverage.
    Submit,
    /// A job was admitted with load-shed (reduced) coverage.
    Shed,
    /// A job was refused: the queue hit its hard cap.
    Reject,
    /// A worker began executing the job.
    Start,
    /// The supervisor reaped a worker whose sim-clock heartbeat went
    /// stale and rescheduled its cell.
    Reap,
    /// A cell exhausted its supervised retries and was quarantined as
    /// poison; `detail` preserves the panic payload.
    Quarantine,
    /// Cells skipped because the job's deadline budget ran out.
    DeadlineSkip,
    /// The job completed and produced the embedded [`Revision`].
    Finish,
    /// The job failed as a whole (e.g. its spec no longer validates).
    JobFail,
}

appvsweb_json::impl_json!(
    enum WalKind {
        Submit,
        Shed,
        Reject,
        Start,
        Reap,
        Quarantine,
        DeadlineSkip,
        Finish,
        JobFail,
    }
);

/// One journal line: a job state transition.
///
/// The record is the unit of atomicity — the crash-point suite
/// truncates the journal at every record boundary and proves recovery
/// is byte-identical. Optional fields are elided as `null` by
/// `appvsweb-json`, so small transitions stay small.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number (checkpoints refer to it).
    pub seq: u64,
    /// Which transition this is.
    pub kind: WalKind,
    /// The job the transition belongs to.
    pub job: u64,
    /// Cell label, panic payload, or failure reason — kind-specific.
    pub detail: String,
    /// The submitted spec (`Submit`/`Shed`/`Reject` only).
    pub spec: Option<JobSpec>,
    /// Effective coverage stride after load-shedding (`Shed` only).
    pub stride: u32,
    /// Cell attempt the transition refers to (`Reap`/`Quarantine`).
    pub attempt: u32,
    /// Cells affected (`DeadlineSkip`).
    pub count: u32,
    /// Simulated cost of the whole job; advances the service clock
    /// (`Finish`/`JobFail` only — mid-job records cost nothing, which
    /// is what makes crash-resume converge).
    pub cost_ms: u64,
    /// The completed revision (`Finish` only).
    pub revision: Option<Revision>,
}

appvsweb_json::impl_json!(struct WalRecord {
    seq,
    kind,
    job,
    detail,
    spec,
    stride,
    attempt,
    count,
    cost_ms,
    revision,
});

impl WalRecord {
    /// A minimal record of `kind` for `job`; callers fill the
    /// kind-specific fields.
    pub fn new(seq: u64, kind: WalKind, job: u64) -> WalRecord {
        WalRecord {
            seq,
            kind,
            job,
            detail: String::new(),
            spec: None,
            stride: 1,
            attempt: 0,
            count: 0,
            cost_ms: 0,
            revision: None,
        }
    }

    /// Encode as one journal line (compact JSON, no newline).
    pub fn encode(&self) -> String {
        self.to_json().to_compact()
    }

    /// Decode one journal line.
    pub fn decode(line: &str) -> Result<WalRecord, WalError> {
        appvsweb_cover::cover!();
        let value = appvsweb_json::parse(line).map_err(|e| WalError::Codec(e.to_string()))?;
        WalRecord::from_json(&value).map_err(|e| WalError::Codec(e.to_string()))
    }
}

/// Why the journal could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// A record failed to parse or validate.
    Codec(String),
    /// An interior line (not the torn tail) is malformed.
    Corrupt {
        /// 1-based journal line number.
        line: usize,
        /// What the codec rejected.
        error: String,
    },
    /// Filesystem failure, stringified.
    Io(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Codec(e) => write!(f, "journal codec error: {e}"),
            WalError::Corrupt { line, error } => {
                write!(f, "journal corrupt at line {line}: {error}")
            }
            WalError::Io(e) => write!(f, "journal io error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Decode a whole journal, tolerating a torn tail.
///
/// A crash can only tear the *final* record (appends are sequential),
/// so: a last line with no trailing `\n`, or a last line that fails to
/// parse, is dropped silently; any malformed line *before* the last is
/// real corruption and comes back as [`WalError::Corrupt`]. Sequence
/// numbers must be strictly increasing — a regression means interleaved
/// journals and is also corruption.
pub fn replay_lines(text: &str) -> Result<Vec<WalRecord>, WalError> {
    let complete: Vec<&str> = match text.rfind('\n') {
        Some(end) => text[..end].split('\n').collect(),
        // No newline at all: the only line ever written is torn.
        None => Vec::new(),
    };
    let mut records = Vec::with_capacity(complete.len());
    let mut last_seq: Option<u64> = None;
    let last_idx = complete.len().saturating_sub(1);
    for (idx, line) in complete.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        match WalRecord::decode(line) {
            Ok(rec) => {
                if let Some(prev) = last_seq {
                    if rec.seq <= prev {
                        return Err(WalError::Corrupt {
                            line: idx + 1,
                            error: format!("seq {} after {}", rec.seq, prev),
                        });
                    }
                }
                last_seq = Some(rec.seq);
                records.push(rec);
            }
            // The final complete line can still be torn *within* its
            // bytes if the newline made it to disk first; treat exactly
            // like the missing-newline case. Anything earlier is
            // corruption.
            Err(err) if idx == last_idx => {
                let _ = err;
                break;
            }
            Err(WalError::Codec(error)) => {
                return Err(WalError::Corrupt {
                    line: idx + 1,
                    error,
                });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> WalRecord {
        let mut r = WalRecord::new(seq, WalKind::Start, 7);
        r.detail = format!("job-{seq}");
        r
    }

    #[test]
    fn records_roundtrip_through_the_line_codec() {
        let r = rec(3);
        let back = WalRecord::decode(&r.encode()).expect("roundtrip");
        assert_eq!(back, r);
        // Fixed point: encode(decode(encode(x))) == encode(x).
        assert_eq!(back.encode(), r.encode());
    }

    #[test]
    fn replay_tolerates_a_torn_tail() {
        let full = format!("{}\n{}\n", rec(1).encode(), rec(2).encode());
        assert_eq!(replay_lines(&full).expect("full").len(), 2);

        // Torn: half of record 2, no newline.
        let torn = format!("{}\n{}", rec(1).encode(), &rec(2).encode()[..10]);
        assert_eq!(replay_lines(&torn).expect("torn").len(), 1);

        // Torn but the newline hit disk first.
        let torn_nl = format!("{}\n{}\n", rec(1).encode(), &rec(2).encode()[..10]);
        assert_eq!(replay_lines(&torn_nl).expect("torn-nl").len(), 1);
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let text = format!("{}\ngarbage\n{}\n", rec(1).encode(), rec(3).encode());
        match replay_lines(&text) {
            Err(WalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn seq_regressions_are_corruption() {
        let text = format!(
            "{}\n{}\n{}\n",
            rec(1).encode(),
            rec(2).encode(),
            rec(2).encode()
        );
        assert!(matches!(
            replay_lines(&text),
            Err(WalError::Corrupt { line: 3, .. })
        ));
    }
}
