//! The resident server: WAL-first orchestration of submit → run →
//! revision → drift, plus file-backed recovery.
//!
//! Every state change follows the same two-step: **append the record,
//! then apply it** ([`Server::log`]). The journal sink is pluggable
//! ([`WalSink`]) — the crash-point suite uses the in-memory
//! [`MemWal`] and truncates it at every boundary; `repro serve` uses
//! [`FileWal`] under a state directory managed by [`ServeDir`].

use crate::job::JobSpec;
use crate::queue::{Admission, QueueConfig};
use crate::runner::{self, JobRunResult};
use crate::state::{Checkpoint, JobEntry, Revision, ServeState};
use crate::wal::{replay_lines, WalError, WalKind, WalRecord};
use appvsweb_analysis::drift::{headline_stats, profiles_of};
use appvsweb_analysis::Study;
use appvsweb_core::study::StudyConfigError;
use appvsweb_json::{FromJson, ToJson};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Why a server operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The submitted spec does not validate.
    Config(StudyConfigError),
    /// The journal is unreadable.
    Wal(WalError),
    /// Filesystem failure, stringified.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid job spec: {e}"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

/// Where journal lines go. Appends must be durable before `apply` —
/// that ordering is the whole crash-safety argument.
pub trait WalSink {
    /// Append one record line (no trailing newline in `line`).
    fn append_line(&mut self, line: &str) -> Result<(), ServeError>;
}

/// In-memory journal for tests and the smoke gate: the accumulated
/// text is exactly what a [`FileWal`] would hold on disk.
#[derive(Clone, Debug, Default)]
pub struct MemWal {
    /// The journal text, one record per line.
    pub text: String,
}

impl WalSink for MemWal {
    fn append_line(&mut self, line: &str) -> Result<(), ServeError> {
        self.text.push_str(line);
        self.text.push('\n');
        Ok(())
    }
}

/// File-backed journal: append + flush per record.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
}

impl FileWal {
    /// Open (creating if absent) the journal at `path`.
    pub fn new(path: impl Into<PathBuf>) -> FileWal {
        FileWal { path: path.into() }
    }
}

impl WalSink for FileWal {
    fn append_line(&mut self, line: &str) -> Result<(), ServeError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| ServeError::Io(e.to_string()))
    }
}

/// Replay a journal (plus optional checkpoint) into recovered state.
///
/// Returns the state with in-flight jobs re-queued, and the last
/// applied sequence number (0 when the journal is empty).
pub fn recover(
    wal_text: &str,
    checkpoint: Option<&Checkpoint>,
) -> Result<(ServeState, u64), WalError> {
    let records = replay_lines(wal_text)?;
    let (mut state, from_seq) = match checkpoint {
        Some(cp) => (cp.state.clone(), cp.wal_seq),
        None => (ServeState::default(), 0),
    };
    let mut last = from_seq;
    for rec in records.iter().filter(|r| r.seq > from_seq) {
        state.apply(rec);
        last = rec.seq;
    }
    state.requeue_inflight();
    Ok((state, last))
}

/// The resident service.
pub struct Server<S: WalSink> {
    /// Materialized state (pure fold of the journal).
    pub state: ServeState,
    /// Admission bounds.
    pub queue: QueueConfig,
    /// Worker threads for campaign execution.
    pub workers: usize,
    sink: S,
    last_seq: u64,
}

impl<S: WalSink> Server<S> {
    /// A fresh server over an empty journal.
    pub fn new(sink: S, queue: QueueConfig, workers: usize) -> Server<S> {
        Server {
            state: ServeState::default(),
            queue,
            workers: workers.max(1),
            sink,
            last_seq: 0,
        }
    }

    /// A server resuming from recovered state; `last_seq` is the last
    /// sequence number already in the journal.
    pub fn recovered(
        sink: S,
        state: ServeState,
        last_seq: u64,
        queue: QueueConfig,
        workers: usize,
    ) -> Server<S> {
        Server {
            state,
            queue,
            workers: workers.max(1),
            sink,
            last_seq,
        }
    }

    /// The underlying journal sink (tests inspect [`MemWal::text`]).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Last journal sequence number written.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    fn next_seq(&mut self) -> u64 {
        self.last_seq = self.last_seq.saturating_add(1);
        self.last_seq
    }

    /// Append-then-apply: the only way state changes.
    fn log(&mut self, rec: WalRecord) -> Result<(), ServeError> {
        self.sink.append_line(&rec.encode())?;
        self.state.apply(&rec);
        Ok(())
    }

    /// Admit (possibly shedding) or reject one submission. Invalid
    /// specs error out before anything is journaled.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(u64, Admission), ServeError> {
        spec.to_study_config(self.workers, 1)
            .map_err(ServeError::Config)?;
        let admission = self.queue.admit(self.state.queued.len());
        let job = self.state.next_job;
        let seq = self.next_seq();
        let mut rec = match admission {
            Admission::Admit => WalRecord::new(seq, WalKind::Submit, job),
            Admission::Shed(stride) => {
                let mut r = WalRecord::new(seq, WalKind::Shed, job);
                r.stride = stride;
                r
            }
            Admission::Reject => {
                let mut r = WalRecord::new(seq, WalKind::Reject, job);
                r.detail = "queue at hard cap".to_string();
                r
            }
        };
        rec.spec = Some(spec);
        self.log(rec)?;
        appvsweb_obs::counter!("serve.jobs_submitted");
        if admission == Admission::Reject {
            appvsweb_obs::counter!("serve.jobs_rejected");
        }
        appvsweb_obs::histogram!("serve.queue_depth", self.state.queued.len() as u64);
        Ok((job, admission))
    }

    /// Run the next queued job to completion. `Ok(None)` when idle.
    pub fn run_next(&mut self) -> Result<Option<u64>, ServeError> {
        let Some(&job_id) = self.state.queued.first() else {
            return Ok(None);
        };
        let seq = self.next_seq();
        self.log(WalRecord::new(seq, WalKind::Start, job_id))?;
        let Some(entry) = self.state.job(job_id).cloned() else {
            // Queue/ledger disagreement can only come from a corrupt
            // journal that still replayed; fail the job explicitly.
            let mut rec = WalRecord::new(self.next_seq(), WalKind::JobFail, job_id);
            rec.detail = "job entry missing from ledger".to_string();
            self.log(rec)?;
            return Ok(Some(job_id));
        };
        let result = runner::run_job(&entry, self.workers);
        self.finish_job(job_id, &entry, result)?;
        appvsweb_obs::counter!("serve.jobs_completed");
        Ok(Some(job_id))
    }

    fn finish_job(
        &mut self,
        job_id: u64,
        entry: &JobEntry,
        result: JobRunResult,
    ) -> Result<(), ServeError> {
        for ev in &result.events {
            let mut rec = WalRecord::new(self.next_seq(), ev.kind, job_id);
            rec.detail = ev.detail.clone();
            rec.attempt = ev.attempt;
            rec.count = ev.count;
            self.log(rec)?;
        }
        match result.study {
            Some(study) => {
                let revision = build_revision(entry, &study);
                let mut rec = WalRecord::new(self.next_seq(), WalKind::Finish, job_id);
                rec.cost_ms = result.cost_ms;
                rec.revision = Some(revision);
                self.log(rec)
            }
            None => {
                let mut rec = WalRecord::new(self.next_seq(), WalKind::JobFail, job_id);
                rec.detail = result.error;
                rec.cost_ms = result.cost_ms;
                self.log(rec)
            }
        }
    }

    /// Drain the queue; returns how many jobs ran.
    pub fn run_pending(&mut self) -> Result<u32, ServeError> {
        let mut ran = 0u32;
        while self.run_next()?.is_some() {
            ran = ran.saturating_add(1);
        }
        Ok(ran)
    }

    /// Snapshot the current state for a checkpoint.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            wal_seq: self.last_seq,
            state: self.state.clone(),
        }
    }
}

/// Build the durable revision a finished study becomes. `id`, `job`,
/// and `at_ms` are assigned by [`ServeState::apply`] when the `Finish`
/// record folds in, keeping the construction replay-stable.
pub fn build_revision(entry: &JobEntry, study: &Study) -> Revision {
    let profiles = profiles_of(study);
    let profile_json = profiles.to_json().to_compact();
    Revision {
        id: 0,
        job: entry.id,
        name: entry.spec.name.clone(),
        seed: entry.spec.seed,
        at_ms: 0,
        headlines: headline_stats(study),
        profiles,
        health: study.health.clone(),
        digest: appvsweb_pii::hash::md5_hex(profile_json.as_bytes()),
    }
}

/// A state directory holding `wal.jsonl` + `checkpoint.json`.
#[derive(Clone, Debug)]
pub struct ServeDir {
    dir: PathBuf,
}

impl ServeDir {
    /// Manage state under `dir` (created on first append/checkpoint).
    pub fn new(dir: impl Into<PathBuf>) -> ServeDir {
        ServeDir { dir: dir.into() }
    }

    /// Path of the journal file.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.jsonl")
    }

    /// Path of the checkpoint file.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.json")
    }

    /// Open the directory's server: recover from checkpoint + journal
    /// when present, start fresh otherwise.
    pub fn open(&self, queue: QueueConfig, workers: usize) -> Result<Server<FileWal>, ServeError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| ServeError::Io(e.to_string()))?;
        let checkpoint = match read_optional(&self.checkpoint_path())? {
            Some(text) => {
                let value = appvsweb_json::parse(&text)
                    .map_err(|e| ServeError::Wal(WalError::Codec(e.to_string())))?;
                Some(
                    Checkpoint::from_json(&value)
                        .map_err(|e| ServeError::Wal(WalError::Codec(e.to_string())))?,
                )
            }
            None => None,
        };
        let wal_text = read_optional(&self.wal_path())?.unwrap_or_default();
        let (state, last_seq) = recover(&wal_text, checkpoint.as_ref())?;
        Ok(Server::recovered(
            FileWal::new(self.wal_path()),
            state,
            last_seq,
            queue,
            workers,
        ))
    }

    /// Write a checkpoint atomically (temp file + rename).
    pub fn write_checkpoint(&self, cp: &Checkpoint) -> Result<(), ServeError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| ServeError::Io(e.to_string()))?;
        let tmp = self.dir.join("checkpoint.json.tmp");
        std::fs::write(&tmp, cp.to_json().to_pretty())
            .and_then(|()| std::fs::rename(&tmp, self.checkpoint_path()))
            .map_err(|e| ServeError::Io(e.to_string()))
    }
}

fn read_optional(path: &Path) -> Result<Option<String>, ServeError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ServeError::Io(e.to_string())),
    }
}
