//! The supervised queue/worker executor.
//!
//! One job = one campaign, executed as **rounds** of cell attempts on
//! the same work-stealing substrate the batch runner uses
//! (`core::exec::run_indexed`, index-ordered results). Each round runs
//! every pending cell once inside `run_cell_caught`'s panic boundary,
//! then a **sequential fold** plays supervisor: it charges each
//! attempt's simulated cost, reaps workers whose sim-clock heartbeat
//! went stale, draws retry backoff from the shared
//! [`RetryPolicy`](crate::job::RetryPolicy) (one jitter stream per job,
//! `rng_labels::serve_retry`), and quarantines poison cells after
//! `max_retries` supervised retries — preserving the panic payload in
//! the `StudyHealth` ledger.
//!
//! Because rounds are deterministic (pending order is submit order,
//! results come back index-ordered, backoff draws happen in the fold),
//! the event stream and the folded study are byte-identical across
//! worker counts — the property the `--smoke` gate asserts.

use crate::job::{JobSpec, RetryPolicy};
use crate::state::JobEntry;
use crate::wal::WalKind;
use appvsweb_analysis::Study;
use appvsweb_core::study::{
    campaign_cells, fold_outcomes, run_cell_caught, train_recon, CellOutcome, StudyConfig,
};
use appvsweb_netsim::{rng_labels, Os, SimRng};
use appvsweb_services::{Catalog, Medium, ServiceSpec};
use std::collections::BTreeSet;

/// Sim-clock heartbeat budget: a worker silent for this long is
/// presumed stuck, reaped, and its cell rescheduled.
pub const HEARTBEAT_TIMEOUT_MS: u64 = 30_000;

/// One supervisor event discovered while running a job, in emission
/// order. The server lowers each onto a WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunEvent {
    /// `Reap`, `Quarantine`, or `DeadlineSkip`.
    pub kind: WalKind,
    /// Cell label (reap/quarantine) or reason.
    pub detail: String,
    /// Cell attempt the event refers to.
    pub attempt: u32,
    /// Cells affected (`DeadlineSkip`).
    pub count: u32,
}

/// Everything one job execution produced.
#[derive(Clone, Debug)]
pub struct JobRunResult {
    /// The folded campaign, `None` when the job failed wholesale.
    pub study: Option<Study>,
    /// Supervisor events, deterministic order.
    pub events: Vec<RunEvent>,
    /// Total simulated cost: attempts + heartbeat timeouts + backoffs.
    pub cost_ms: u64,
    /// Failure reason when `study` is `None`.
    pub error: String,
}

enum Attempt {
    Ok(Box<appvsweb_analysis::CellAnalysis>),
    Panicked(String),
    /// The worker stopped heartbeating (injected via
    /// [`JobSpec::stall_cells`]); it never produced a result.
    Stalled,
}

fn cell_label(spec: &ServiceSpec, os: Os, medium: Medium) -> String {
    format!("{}/{:?}/{:?}", spec.id, os, medium)
}

/// Execute one job under supervision.
pub fn run_job(entry: &JobEntry, workers: usize) -> JobRunResult {
    let spec = &entry.spec;
    let cfg = match spec.to_study_config(workers, entry.shed_stride) {
        Ok(cfg) => cfg,
        Err(err) => {
            return JobRunResult {
                study: None,
                events: Vec::new(),
                cost_ms: 0,
                error: err.to_string(),
            }
        }
    };
    let catalog = Catalog::paper();
    let work = match campaign_cells(&catalog, &cfg.cells) {
        Ok(work) => work,
        Err(err) => {
            return JobRunResult {
                study: None,
                events: Vec::new(),
                cost_ms: 0,
                error: err.to_string(),
            }
        }
    };
    let recon = if cfg.use_recon {
        Some(train_recon(&catalog, &cfg))
    } else {
        None
    };
    supervise(entry.id, spec, &cfg, &work, recon.as_ref())
}

fn supervise(
    job_id: u64,
    spec: &JobSpec,
    cfg: &StudyConfig,
    work: &[(&ServiceSpec, Os, Medium)],
    recon: Option<&appvsweb_pii::recon::ReconClassifier>,
) -> JobRunResult {
    let _span = appvsweb_obs::span!("serve.job", "job={job_id} cells={}", work.len());
    let stall: BTreeSet<&str> = spec.stall_cells.iter().map(String::as_str).collect();
    let attempt_ms = cfg.duration.as_millis();
    let allowed = spec.max_retries.saturating_add(1);
    let policy = RetryPolicy {
        max_attempts: allowed,
        ..RetryPolicy::standard()
    };
    // One jitter stream per job, keyed by the stable job id: queue
    // order and worker count can never re-key another job's schedule.
    let mut rng = SimRng::new(spec.seed).fork(&rng_labels::serve_retry(job_id));

    let mut events = Vec::new();
    let mut cost_ms = 0u64;
    let mut outcomes: Vec<Option<CellOutcome>> = vec![None; work.len()];
    let mut panics: Vec<u64> = vec![0; work.len()];
    let mut last_msg: Vec<Option<String>> = vec![None; work.len()];
    // (work index, attempt) pairs still owed a result, submit order.
    let mut pending: Vec<(usize, u32)> = (0..work.len()).map(|i| (i, 0)).collect();

    while !pending.is_empty() {
        if spec.deadline_ms > 0 && cost_ms >= spec.deadline_ms {
            // Budget exhausted: the remaining cells are skipped, not
            // run — recorded as failed so the ledger stays honest.
            events.push(RunEvent {
                kind: WalKind::DeadlineSkip,
                detail: "deadline budget exhausted".to_string(),
                attempt: 0,
                count: pending.len() as u32,
            });
            for &(idx, attempt) in &pending {
                if let Some((s, os, medium)) = work.get(idx) {
                    outcomes[idx] = Some(CellOutcome {
                        label: cell_label(s, *os, *medium),
                        cell: None,
                        attempts: attempt,
                        panics: panics[idx],
                        panic_msg: Some("skipped: job deadline budget exhausted".to_string()),
                    });
                }
            }
            break;
        }

        // One round: every pending cell attempts once, in parallel,
        // results back in pending order.
        let results =
            appvsweb_core::exec::run_indexed(&pending, cfg.workers, 1, |_, &(idx, attempt)| {
                match work.get(idx) {
                    Some((s, os, medium)) => {
                        let label = cell_label(s, *os, *medium);
                        if attempt == 0 && stall.contains(label.as_str()) {
                            Attempt::Stalled
                        } else {
                            match run_cell_caught(s, *os, *medium, cfg, recon, attempt) {
                                Ok(cell) => Attempt::Ok(Box::new(cell)),
                                Err(msg) => Attempt::Panicked(msg),
                            }
                        }
                    }
                    None => Attempt::Panicked("work index out of range".to_string()),
                }
            });

        // Sequential supervisor fold: deterministic event order and
        // rng draws regardless of worker interleaving.
        let round: Vec<(usize, u32)> = std::mem::take(&mut pending);
        for (&(idx, attempt), result) in round.iter().zip(results) {
            let label = match work.get(idx) {
                Some((s, os, medium)) => cell_label(s, *os, *medium),
                None => continue,
            };
            match result {
                Attempt::Ok(cell) => {
                    cost_ms = cost_ms.saturating_add(attempt_ms);
                    outcomes[idx] = Some(CellOutcome {
                        label,
                        cell: Some(*cell),
                        attempts: attempt.saturating_add(1),
                        panics: panics[idx],
                        panic_msg: last_msg[idx].take(),
                    });
                }
                Attempt::Stalled => {
                    // The heartbeat went stale: charge the timeout,
                    // reap the worker, reschedule the cell.
                    cost_ms = cost_ms.saturating_add(HEARTBEAT_TIMEOUT_MS);
                    appvsweb_obs::counter!("serve.supervisor_reaps");
                    events.push(RunEvent {
                        kind: WalKind::Reap,
                        detail: label.clone(),
                        attempt,
                        count: 0,
                    });
                    let msg = "worker reaped: sim-clock heartbeat expired".to_string();
                    retry_or_quarantine(
                        idx,
                        attempt,
                        allowed,
                        label,
                        msg,
                        &policy,
                        &mut rng,
                        &mut cost_ms,
                        &mut pending,
                        &mut events,
                        &mut outcomes,
                        &panics,
                        &mut last_msg,
                    );
                }
                Attempt::Panicked(msg) => {
                    cost_ms = cost_ms.saturating_add(attempt_ms);
                    panics[idx] = panics[idx].saturating_add(1);
                    retry_or_quarantine(
                        idx,
                        attempt,
                        allowed,
                        label,
                        msg,
                        &policy,
                        &mut rng,
                        &mut cost_ms,
                        &mut pending,
                        &mut events,
                        &mut outcomes,
                        &panics,
                        &mut last_msg,
                    );
                }
            }
        }
    }

    let reaps = events.iter().filter(|e| e.kind == WalKind::Reap).count() as u64;
    let quarantined = events
        .iter()
        .filter(|e| e.kind == WalKind::Quarantine)
        .count() as u64;
    let folded: Vec<CellOutcome> = outcomes
        .into_iter()
        .zip(work)
        .map(|(o, (s, os, medium))| {
            o.unwrap_or_else(|| CellOutcome {
                label: cell_label(s, *os, *medium),
                cell: None,
                attempts: 0,
                panics: 0,
                panic_msg: Some("cell never scheduled".to_string()),
            })
        })
        .collect();
    let mut study = fold_outcomes(folded);
    study.health.supervisor_reaps = reaps;
    study.health.cells_quarantined = quarantined;
    appvsweb_obs::histogram!("serve.job_cost_ms", cost_ms);
    JobRunResult {
        study: Some(study),
        events,
        cost_ms,
        error: String::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn retry_or_quarantine(
    idx: usize,
    attempt: u32,
    allowed: u32,
    label: String,
    msg: String,
    policy: &RetryPolicy,
    rng: &mut SimRng,
    cost_ms: &mut u64,
    pending: &mut Vec<(usize, u32)>,
    events: &mut Vec<RunEvent>,
    outcomes: &mut [Option<CellOutcome>],
    panics: &[u64],
    last_msg: &mut [Option<String>],
) {
    if let Some(slot) = last_msg.get_mut(idx) {
        *slot = Some(msg.clone());
    }
    let next = attempt.saturating_add(1);
    if next < allowed {
        // Capped, jittered backoff from the one shared implementation.
        let backoff = policy.backoff_ms(attempt, rng);
        appvsweb_obs::histogram!("serve.backoff_ms", backoff);
        *cost_ms = cost_ms.saturating_add(backoff);
        pending.push((idx, next));
    } else {
        appvsweb_obs::counter!("serve.cells_quarantined");
        events.push(RunEvent {
            kind: WalKind::Quarantine,
            detail: format!("{label}: {msg}"),
            attempt,
            count: 0,
        });
        if let Some(slot) = outcomes.get_mut(idx) {
            *slot = Some(CellOutcome {
                label,
                cell: None,
                attempts: allowed,
                panics: panics.get(idx).copied().unwrap_or(0),
                panic_msg: Some(msg),
            });
        }
    }
}
