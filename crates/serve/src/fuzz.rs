//! Fuzz harness for the `serve` target: the HTTP request parser and
//! the revision-journal codec.
//!
//! The first input byte picks the mode (even = HTTP, odd = WAL), so
//! one corpus exercises both surfaces. Properties checked:
//!
//! * `parse_request` is total on arbitrary bytes, and every accepted
//!   request renders a response (no panic on the render path either);
//! * `replay_lines` is total on arbitrary text; every record that
//!   decodes re-encodes to the same bytes (codec fixed point), the
//!   replayed fold applies cleanly, and the resulting state
//!   roundtrips through its JSON codec;
//! * `diff_profiles(x, x)` is empty — a revision never drifts against
//!   itself.

use crate::http::{parse_request, render_response};
use crate::state::ServeState;
use crate::wal::{replay_lines, WalRecord};
use appvsweb_analysis::drift::diff_profiles;
use appvsweb_json::{FromJson, ToJson};

/// Dictionary tokens for the mutator.
pub const DICT: &[&[u8]] = &[
    b"GET ",
    b"POST ",
    b" HTTP/1.1\r\n",
    b"\r\n\r\n",
    b"content-length:",
    b"/submit",
    b"/health",
    b"/report/latest",
    b"/status/",
    b"/drift",
    b"{\"seq\":1,\"kind\":\"Submit\",\"job\":0,",
    b"\"kind\":\"Finish\"",
    b"\"kind\":\"Reap\"",
    b"\"kind\":\"Quarantine\"",
    b"\"revision\":",
    b"\"profiles\":[",
    b"\"cost_ms\":",
    b"\"spec\":null",
];

/// Built-in seed inputs (mode byte + payload).
pub const SEEDS: &[&[u8]] = &[
    b"\x00GET /health HTTP/1.1\r\n\r\n",
    b"\x00POST /submit HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}",
    b"\x01{\"seq\":1,\"kind\":\"Submit\",\"job\":0,\"detail\":\"\",\"spec\":null,\"stride\":1,\"attempt\":0,\"count\":0,\"cost_ms\":0,\"revision\":null}\n",
    b"\x01{\"seq\":1,\"kind\":\"Start\",\"job\":0,\"detail\":\"\",\"spec\":null,\"stride\":1,\"attempt\":0,\"count\":0,\"cost_ms\":0,\"revision\":null}\n{\"seq\":2,\"kind\":\"Finish\",\"job\":0,\"detail\":\"\",\"spec\":null,\"stride\":1,\"attempt\":0,\"count\":0,\"cost_ms\":60000,\"revision\":null}\n",
];

fn fuzz_http(data: &[u8]) {
    if let Ok(req) = parse_request(data) {
        // Accepted requests must render; exercise both arms.
        let _ = render_response(200, &req.path);
        let _ = render_response(404, "");
    }
}

fn fuzz_wal(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let Ok(records) = replay_lines(&text) else {
        return;
    };
    let mut state = ServeState::default();
    for rec in &records {
        // Codec fixed point: decode(encode(rec)) == rec, byte-stable.
        let line = rec.encode();
        if let Ok(back) = WalRecord::decode(&line) {
            assert_eq!(back.encode(), line, "WAL codec must be a fixed point");
        }
        state.apply(rec);
        if let Some(rev) = &rec.revision {
            assert!(
                diff_profiles(&rev.profiles, &rev.profiles).is_empty(),
                "a revision must not drift against itself"
            );
        }
    }
    state.requeue_inflight();
    if let Ok(back) = ServeState::from_json(&state.to_json()) {
        assert_eq!(back, state, "state JSON codec must roundtrip");
    }
}

/// Entry point registered as fuzz target `serve`.
pub fn run(data: &[u8]) {
    match data.split_first() {
        None => {}
        Some((mode, rest)) => {
            if mode % 2 == 0 {
                fuzz_http(rest)
            } else {
                fuzz_wal(rest)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_run_clean() {
        for seed in SEEDS {
            run(seed);
        }
        run(b"");
        run(b"\x00");
        run(b"\x01");
        run(b"\x01not json at all\n");
    }
}
