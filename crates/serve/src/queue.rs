//! Admission control for the job queue.
//!
//! The queue is bounded twice over: up to `depth` jobs are admitted at
//! full coverage; between `depth` and `hard_cap` the service *degrades
//! instead of refusing* — jobs are admitted load-shed, running every
//! `shed_stride`-th cell of their selection; at `hard_cap` submissions
//! are rejected outright. The decision is a pure function of the
//! current queue length, is journaled in the admission record, and is
//! therefore replay-stable.

/// Queue bounds and the load-shed degradation factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueConfig {
    /// Jobs admitted at full coverage while the queue is shorter than
    /// this.
    pub depth: usize,
    /// Absolute queue bound; submissions at or past it are rejected.
    pub hard_cap: usize,
    /// Coverage stride applied to load-shed admissions.
    pub shed_stride: u32,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: 4,
            hard_cap: 8,
            shed_stride: 4,
        }
    }
}

appvsweb_json::impl_json!(struct QueueConfig { depth, hard_cap, shed_stride });

/// The admission controller's verdict for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run at full coverage.
    Admit,
    /// Run with coverage thinned by this stride.
    Shed(u32),
    /// Refuse: queue at hard cap.
    Reject,
}

impl QueueConfig {
    /// Decide admission given the current queue length.
    pub fn admit(&self, queue_len: usize) -> Admission {
        if queue_len >= self.hard_cap.max(1) {
            Admission::Reject
        } else if queue_len >= self.depth {
            Admission::Shed(self.shed_stride.max(2))
        } else {
            Admission::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_degrades_then_refuses() {
        let q = QueueConfig {
            depth: 2,
            hard_cap: 4,
            shed_stride: 3,
        };
        assert_eq!(q.admit(0), Admission::Admit);
        assert_eq!(q.admit(1), Admission::Admit);
        assert_eq!(q.admit(2), Admission::Shed(3));
        assert_eq!(q.admit(3), Admission::Shed(3));
        assert_eq!(q.admit(4), Admission::Reject);
        assert_eq!(q.admit(100), Admission::Reject);
    }

    #[test]
    fn degenerate_configs_stay_total() {
        let q = QueueConfig {
            depth: 0,
            hard_cap: 0,
            shed_stride: 0,
        };
        // hard_cap clamps to 1, shed stride to 2: never a divide-by-zero
        // or an admit-everything hole.
        assert_eq!(q.admit(0), Admission::Shed(2));
        assert_eq!(q.admit(1), Admission::Reject);
    }
}
