//! Minimal std-only HTTP/1.1: a hardened request parser, a response
//! renderer, and the service's route table.
//!
//! The parser is the fuzz-hardened surface (target `serve`): total on
//! arbitrary bytes, with explicit limits — request line ≤ 4096 bytes,
//! ≤ 64 headers of ≤ 1024 bytes each, body ≤ 64 KiB via
//! `Content-Length`. No chunked encoding, no keep-alive negotiation:
//! one request, one response, exactly what a monitoring endpoint needs.

use crate::job::JobSpec;
use crate::service::{Server, WalSink};
use crate::state::JobStatus;
use appvsweb_json::{FromJson, Json, ToJson};
use std::fmt;

/// Request-line byte cap.
pub const MAX_REQUEST_LINE: usize = 4096;
/// Header-count cap.
pub const MAX_HEADERS: usize = 64;
/// Single-header byte cap.
pub const MAX_HEADER_LINE: usize = 1024;
/// Body byte cap.
pub const MAX_BODY: usize = 64 * 1024;

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Absolute path, query string stripped.
    pub path: String,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

/// Why a byte stream is not an acceptable request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Head incomplete: no terminating blank line yet.
    Incomplete,
    /// Malformed or over-long request line.
    BadRequestLine,
    /// Header section violates a limit or is malformed.
    BadHeader,
    /// `Content-Length` unparseable or over the body cap.
    BadLength,
    /// Fewer body bytes than `Content-Length` promised.
    ShortBody,
}

impl HttpError {
    /// The status code this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Incomplete | HttpError::ShortBody => 400,
            HttpError::BadRequestLine => 400,
            HttpError::BadHeader => 431,
            HttpError::BadLength => 413,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Incomplete => write!(f, "incomplete request head"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed or over-long headers"),
            HttpError::BadLength => write!(f, "bad or excessive content-length"),
            HttpError::ShortBody => write!(f, "body shorter than content-length"),
        }
    }
}

fn find_head_end(bytes: &[u8]) -> Option<(usize, usize)> {
    // Accept CRLF-CRLF (standard) and bare LF-LF (lenient clients).
    if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some((pos, pos + 4));
    }
    bytes
        .windows(2)
        .position(|w| w == b"\n\n")
        .map(|pos| (pos, pos + 2))
}

/// Parse one request from raw bytes.
pub fn parse_request(bytes: &[u8]) -> Result<Request, HttpError> {
    appvsweb_cover::cover!();
    let (head_end, body_start) = find_head_end(bytes).ok_or(HttpError::Incomplete)?;
    let head = std::str::from_utf8(bytes.get(..head_end).unwrap_or_default())
        .map_err(|_| HttpError::BadRequestLine)?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::BadRequestLine);
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || !target.starts_with('/')
        || !version.starts_with("HTTP/1.")
        || parts.next().is_some()
    {
        return Err(HttpError::BadRequestLine);
    }

    let mut content_length = 0usize;
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        header_count += 1;
        if header_count > MAX_HEADERS || line.len() > MAX_HEADER_LINE {
            return Err(HttpError::BadHeader);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::BadLength)?;
            if content_length > MAX_BODY {
                return Err(HttpError::BadLength);
            }
        }
    }

    let body_bytes = bytes.get(body_start..).unwrap_or_default();
    if body_bytes.len() < content_length {
        return Err(HttpError::ShortBody);
    }
    let body = body_bytes
        .get(..content_length)
        .unwrap_or_default()
        .to_vec();
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_string(),
        path,
        body,
    })
}

/// Render a full HTTP/1.1 response with a JSON body.
pub fn render_response(status: u16, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn err_body(message: &str) -> String {
    Json::Obj(vec![("error".to_string(), Json::Str(message.to_string()))]).to_compact()
}

fn job_brief<S: WalSink>(server: &Server<S>, id: u64) -> Option<Json> {
    server.state.job(id).map(|j| j.to_json())
}

/// Route one parsed request against the server. Returns
/// `(status, json_body)`; execution of admitted jobs is the serve
/// loop's business (it drains the queue between requests), so handlers
/// stay fast and the endpoint surface stays deterministic.
pub fn route<S: WalSink>(server: &mut Server<S>, req: &Request) -> (u16, String) {
    appvsweb_obs::counter!("serve.http_requests");
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return (400, err_body("body is not utf-8")),
            };
            let spec = match appvsweb_json::parse(text).and_then(|v| JobSpec::from_json(&v)) {
                Ok(spec) => spec,
                Err(e) => return (400, err_body(&e.to_string())),
            };
            match server.submit(spec) {
                Ok((job, admission)) => {
                    let verdict = match admission {
                        crate::queue::Admission::Admit => "admit",
                        crate::queue::Admission::Shed(_) => "shed",
                        crate::queue::Admission::Reject => "reject",
                    };
                    let body = Json::Obj(vec![
                        ("job".to_string(), Json::Uint(job)),
                        ("admission".to_string(), Json::Str(verdict.to_string())),
                    ])
                    .to_compact();
                    if admission == crate::queue::Admission::Reject {
                        (503, body)
                    } else {
                        (202, body)
                    }
                }
                Err(e) => (422, err_body(&e.to_string())),
            }
        }
        ("POST", _) => (404, err_body("no such endpoint")),
        ("GET", "/health") => {
            let s = &server.state;
            let done = s
                .jobs
                .iter()
                .filter(|j| j.status == JobStatus::Done)
                .count();
            let body = Json::Obj(vec![
                ("clock_ms".to_string(), Json::Uint(s.clock_ms)),
                ("queued".to_string(), Json::Uint(s.queued.len() as u64)),
                ("jobs".to_string(), Json::Uint(s.jobs.len() as u64)),
                ("done".to_string(), Json::Uint(done as u64)),
                (
                    "revisions".to_string(),
                    Json::Uint(s.revisions.len() as u64),
                ),
                ("alarms".to_string(), Json::Uint(s.alarms.len() as u64)),
            ])
            .to_compact();
            (200, body)
        }
        ("GET", "/status") => {
            let jobs: Vec<Json> = server.state.jobs.iter().map(|j| j.to_json()).collect();
            (200, Json::Arr(jobs).to_compact())
        }
        ("GET", "/drift") => (200, server.state.alarms.to_json().to_compact()),
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/status/") {
                return match rest
                    .parse::<u64>()
                    .ok()
                    .and_then(|id| job_brief(server, id))
                {
                    Some(body) => (200, body.to_compact()),
                    None => (404, err_body("no such job")),
                };
            }
            if let Some(rest) = path.strip_prefix("/report/") {
                let rev = if rest == "latest" {
                    server.state.revisions.last()
                } else {
                    rest.parse::<u64>()
                        .ok()
                        .and_then(|id| server.state.revisions.iter().find(|r| r.id == id))
                };
                return match rev {
                    Some(rev) => (200, rev.to_json().to_compact()),
                    None => (404, err_body("no such revision")),
                };
            }
            (404, err_body("no such endpoint"))
        }
        _ => (405, err_body("method not allowed")),
    }
}

/// Handle one raw request buffer end-to-end: parse, route, render.
pub fn handle<S: WalSink>(server: &mut Server<S>, bytes: &[u8]) -> String {
    match parse_request(bytes) {
        Ok(req) => {
            let (status, body) = route(server, &req);
            render_response(status, &body)
        }
        Err(e) => render_response(e.status(), &err_body(&e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_post() {
        let raw = b"POST /submit HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}";
        let req = parse_request(raw).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn strips_query_strings_and_tolerates_bare_lf() {
        let raw = b"GET /health?verbose=1 HTTP/1.1\n\n";
        let req = parse_request(raw).expect("parse");
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn limits_are_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(
            parse_request(long_line.as_bytes()),
            Err(HttpError::BadRequestLine)
        );

        let big_body = b"POST /submit HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n";
        assert_eq!(parse_request(big_body), Err(HttpError::BadLength));

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            many_headers.push_str(&format!("x-h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert_eq!(
            parse_request(many_headers.as_bytes()),
            Err(HttpError::BadHeader)
        );

        let short = b"POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\nab";
        assert_eq!(parse_request(short), Err(HttpError::ShortBody));
    }

    #[test]
    fn responses_carry_correct_content_length() {
        let resp = render_response(200, "{\"ok\":true}");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(resp.contains("content-length: 11\r\n"));
        assert!(resp.ends_with("{\"ok\":true}"));
    }
}
