//! Flow tokenization and structured key/value extraction.
//!
//! ReCon's insight (Ren et al., MobiSys 2016) is that PII-bearing flows
//! are recognizable from their *structure*: the keys and tokens around a
//! value ("email=", "lat=", JSON field names) are stable even when the
//! value changes per user. The feature extractor therefore tokenizes the
//! whole flow into a bag of words and, separately, extracts key/value
//! pairs from query strings, form bodies, JSON-ish bodies, and cookies.

/// Characters that delimit tokens in HTTP flow text.
fn is_delimiter(c: char) -> bool {
    matches!(
        c,
        '=' | '&'
            | '?'
            | '/'
            | ':'
            | ';'
            | ','
            | '"'
            | '\''
            | '{'
            | '}'
            | '['
            | ']'
            | '('
            | ')'
            | ' '
            | '\t'
            | '\r'
            | '\n'
            | '<'
            | '>'
            | '%'
            | '+'
            | '\\'
    )
}

/// Split flow text into lowercase tokens, dropping empties and very long
/// opaque blobs (base64 bodies would otherwise flood the vocabulary).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(is_delimiter)
        .filter(|t| !t.is_empty() && t.len() <= 40)
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// Tokens as a deduplicated, sorted set (bag-of-words presence features).
pub fn token_set(text: &str) -> Vec<String> {
    let mut tokens = tokenize(text);
    tokens.sort();
    tokens.dedup();
    tokens
}

/// Extract `key=value`-shaped pairs from flow text. Handles query
/// strings, form bodies, cookie strings, and flat JSON objects
/// (`"key":"value"` / `"key":123`).
pub fn extract_kv(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();

    // key=value in query/form/cookie segments. The request line ends in
    // " HTTP/1.1", so a trailing query value must stop at whitespace.
    for segment in text.split(['&', ';', '?', '\n']) {
        let segment = segment.trim();
        if let Some((k, v)) = segment.split_once('=') {
            appvsweb_cover::cover!();
            let k = k.rsplit([' ', '/']).next().unwrap_or(k);
            let v = v.split_whitespace().next().unwrap_or("");
            if !k.is_empty() && !v.is_empty() && k.len() <= 40 && v.len() <= 256 {
                appvsweb_cover::cover!();
                out.push((k.to_ascii_lowercase(), v.to_string()));
            }
        }
    }

    // "key":"value" and "key":number in JSON-ish bodies.
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(key_end) = find_quote(bytes, i + 1) {
                appvsweb_cover::cover!();
                let key = &text[i + 1..key_end];
                let mut j = key_end + 1;
                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b':') {
                    if bytes[j] == b':' {
                        j += 1;
                        while j < bytes.len() && bytes[j] == b' ' {
                            j += 1;
                        }
                        let value = if j < bytes.len() && bytes[j] == b'"' {
                            appvsweb_cover::cover!();
                            find_quote(bytes, j + 1).map(|end| text[j + 1..end].to_string())
                        } else {
                            let end = text[j..]
                                .find([',', '}', ']', '\n'])
                                .map(|off| j + off)
                                .unwrap_or(bytes.len());
                            let v = text[j..end].trim();
                            if v.is_empty() {
                                None
                            } else {
                                Some(v.to_string())
                            }
                        };
                        if let Some(v) = value {
                            if !key.is_empty() && key.len() <= 40 && v.len() <= 256 {
                                out.push((key.to_ascii_lowercase(), v));
                            }
                        }
                        break;
                    }
                    j += 1;
                }
                i = key_end + 1;
                continue;
            }
        }
        i += 1;
    }

    out
}

fn find_quote(bytes: &[u8], from: usize) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == b'"')
        .map(|p| from + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        let t = tokenize("GET /v1/track?Email=a@b.com&lat=42.36 HTTP/1.1");
        assert!(t.contains(&"email".to_string()));
        assert!(t.contains(&"a@b.com".to_string()));
        assert!(t.contains(&"42.36".to_string()));
        assert!(t.contains(&"v1".to_string()));
    }

    #[test]
    fn token_set_dedups() {
        let s = token_set("a=1&a=1&b=2");
        assert_eq!(s, vec!["1", "2", "a", "b"]);
    }

    #[test]
    fn long_blobs_excluded() {
        let blob = "x".repeat(100);
        assert!(tokenize(&blob).is_empty());
    }

    #[test]
    fn kv_from_query_and_form() {
        let kv = extract_kv("uid=abc123&Gender=F&empty=&lat=42.36");
        assert!(kv.contains(&("uid".into(), "abc123".into())));
        assert!(kv.contains(&("gender".into(), "F".into())));
        assert!(kv.contains(&("lat".into(), "42.36".into())));
        assert_eq!(kv.iter().filter(|(k, _)| k == "empty").count(), 0);
    }

    #[test]
    fn kv_from_json_body() {
        let kv = extract_kv(r#"{"email":"jane@x.com","age":27,"device":{"model":"Nexus 5"}}"#);
        assert!(kv.contains(&("email".into(), "jane@x.com".into())));
        assert!(kv.contains(&("age".into(), "27".into())));
        assert!(kv.contains(&("model".into(), "Nexus 5".into())));
    }

    #[test]
    fn kv_from_full_request_text() {
        let raw = "POST /collect HTTP/1.1\r\nHost: t.example\r\nCookie: sid=99; _ga=GA1.2\r\n\r\nemail=jane%40x.com&pw=s3cret";
        let kv = extract_kv(raw);
        assert!(kv.contains(&("sid".into(), "99".into())));
        assert!(kv.contains(&("pw".into(), "s3cret".into())));
    }

    #[test]
    fn kv_last_query_param_stops_at_http_version() {
        // The request line ends in " HTTP/1.1"; the final query value
        // must not absorb it (regression: gender=M went undetected).
        let kv = extract_kv("GET /pixel?uid=1&gender=M HTTP/1.1");
        assert!(kv.contains(&("gender".into(), "M".into())));
    }

    #[test]
    fn kv_ignores_oversized_values() {
        let huge = format!("key={}", "v".repeat(500));
        assert!(extract_kv(&huge).is_empty());
    }
}
