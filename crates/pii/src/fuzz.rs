//! Fuzz entry point for the ReCon-style flow tokenizer.
//!
//! The tokenizer and key/value extractor see raw intercepted flow text —
//! the single most attacker-influenced input in the pipeline — so their
//! contract under fuzzing is strict totality plus the size invariants
//! the feature extractor depends on (token length caps keep base64
//! blobs out of the vocabulary; key/value caps bound feature width).

use crate::tokenize::{extract_kv, token_set, tokenize};

/// Run the tokenizer target on raw fuzz bytes.
pub fn run(data: &[u8]) {
    let text = String::from_utf8_lossy(data);

    let tokens = tokenize(&text);
    for t in &tokens {
        assert!(!t.is_empty(), "tokenize emitted an empty token");
        assert!(t.len() <= 40, "token over the 40-byte cap: {t:?}");
        assert!(
            !t.chars().any(|c| c.is_ascii_uppercase()),
            "token not lowercased: {t:?}"
        );
    }

    let set = token_set(&text);
    assert!(
        set.windows(2).all(|w| matches!(w, [a, b] if a < b)),
        "token_set must be sorted and deduplicated"
    );
    assert!(set.len() <= tokens.len(), "token_set grew the bag");

    for (k, v) in extract_kv(&text) {
        assert!(!k.is_empty(), "extract_kv emitted an empty key");
        assert!(k.len() <= 40, "key over the 40-byte cap: {k:?}");
        assert!(v.len() <= 256, "value over the 256-byte cap");
        assert!(
            !k.chars().any(|c| c.is_ascii_uppercase()),
            "key not lowercased: {k:?}"
        );
    }
}

/// Dictionary: the delimiters and key/value shapes the extractor pivots
/// on, plus HTTP request-line anchors.
pub const DICT: &[&[u8]] = &[
    b"=",
    b"&",
    b";",
    b"?",
    b"\"",
    b":",
    b"\"k\":",
    b"\"k\":\"v\"",
    b"email=",
    b"lat=",
    b"uid=",
    b" HTTP/1.1",
    b"Cookie: ",
    b"\r\n\r\n",
    b"%40",
    b"{\"",
    b"\xf0\x9f\x92\xa9",
];

/// Seeds: one of each flow shape the extractor recognizes.
pub const SEEDS: &[&[u8]] = &[
    b"GET /v1/track?Email=a@b.com&lat=42.36 HTTP/1.1",
    b"POST /collect HTTP/1.1\r\nHost: t.example\r\nCookie: sid=99; _ga=GA1.2\r\n\r\nemail=jane%40x.com&pw=s3cret",
    b"{\"email\":\"jane@x.com\",\"age\":27,\"device\":{\"model\":\"Nexus 5\"}}",
];
