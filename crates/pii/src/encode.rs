//! The encoder zoo.
//!
//! §3.2: "knowing the PII in advance is not a catch-all for detecting it
//! in network traffic. GPS locations are sent with arbitrary precision,
//! unique identifiers are formatted inconsistently…". Services and
//! tracker SDKs transform values before transmission; the matcher must
//! search for every transform of every ground-truth value. [`Encoding`]
//! enumerates the transforms observed in mobile/web traffic, and
//! [`Encoding::apply`] produces the on-wire representation.

use crate::hash;
use appvsweb_httpsim::codec;

/// A single value transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Encoding {
    /// Verbatim.
    Plain,
    /// Lowercased (e-mail canonicalization before hashing, etc.).
    Lowercase,
    /// Uppercased (IDFA convention on iOS).
    Uppercase,
    /// Percent-encoded.
    Percent,
    /// Form-style percent encoding: like [`Encoding::Percent`] but with
    /// spaces as `+` (`application/x-www-form-urlencoded` bodies and
    /// browser-built query strings).
    FormPercent,
    /// Standard base64.
    Base64,
    /// URL-safe base64, no padding.
    Base64Url,
    /// Lowercase hex of the UTF-8 bytes.
    Hex,
    /// MD5 hex digest.
    Md5,
    /// SHA-1 hex digest.
    Sha1,
    /// SHA-256 hex digest.
    Sha256,
    /// Identifier with separators stripped (`aa:bb:cc` → `aabbcc`,
    /// UUIDs without dashes).
    StripSeparators,
    /// ROT13 (yes, really seen in 2016 SDK traffic).
    Rot13,
}

impl Encoding {
    /// Every supported transform, in search order (cheapest first).
    pub const ALL: [Encoding; 13] = [
        Encoding::Plain,
        Encoding::Lowercase,
        Encoding::Uppercase,
        Encoding::Percent,
        Encoding::FormPercent,
        Encoding::StripSeparators,
        Encoding::Base64,
        Encoding::Base64Url,
        Encoding::Hex,
        Encoding::Rot13,
        Encoding::Md5,
        Encoding::Sha1,
        Encoding::Sha256,
    ];

    /// Apply this transform to `value`.
    pub fn apply(self, value: &str) -> String {
        match self {
            Encoding::Plain => value.to_string(),
            Encoding::Lowercase => value.to_ascii_lowercase(),
            Encoding::Uppercase => value.to_ascii_uppercase(),
            Encoding::Percent => codec::percent_encode(value),
            Encoding::FormPercent => codec::percent_encode(value).replace("%20", "+"),
            Encoding::Base64 => codec::base64_encode(value.as_bytes()),
            Encoding::Base64Url => codec::base64url_encode(value.as_bytes()),
            Encoding::Hex => codec::hex_encode(value.as_bytes()),
            Encoding::Md5 => hash::md5_hex(value.as_bytes()),
            Encoding::Sha1 => hash::sha1_hex(value.as_bytes()),
            Encoding::Sha256 => hash::sha256_hex(value.as_bytes()),
            Encoding::StripSeparators => value
                .chars()
                .filter(|c| !matches!(c, ':' | '-' | ' ' | '.' | '(' | ')'))
                .collect(),
            Encoding::Rot13 => value
                .chars()
                .map(|c| match c {
                    'a'..='z' => (((c as u8 - b'a') + 13) % 26 + b'a') as char,
                    'A'..='Z' => (((c as u8 - b'A') + 13) % 26 + b'A') as char,
                    other => other,
                })
                .collect(),
        }
    }

    /// Whether this transform is a one-way hash (detection can only
    /// match the digest of ground truth, never recover the value).
    pub fn is_hash(self) -> bool {
        matches!(self, Encoding::Md5 | Encoding::Sha1 | Encoding::Sha256)
    }
}

/// A transform pipeline applied left to right, e.g.
/// `[Lowercase, Md5]` = "hash of the lowercased e-mail" —
/// the canonical tracker e-mail transform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodingChain(pub Vec<Encoding>);

impl EncodingChain {
    /// The identity chain.
    pub fn plain() -> Self {
        EncodingChain(vec![Encoding::Plain])
    }

    /// Apply the whole chain.
    pub fn apply(&self, value: &str) -> String {
        self.0.iter().fold(value.to_string(), |v, e| e.apply(&v))
    }

    /// Compact label, e.g. `"lowercase>md5"`.
    pub fn label(&self) -> String {
        self.0
            .iter()
            .map(|e| format!("{e:?}").to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(">")
    }
}

/// The chains the matcher searches, in priority order. Single transforms
/// plus the handful of compound transforms trackers actually use.
pub fn search_chains() -> Vec<EncodingChain> {
    let mut chains: Vec<EncodingChain> = Encoding::ALL
        .iter()
        .map(|&e| EncodingChain(vec![e]))
        .collect();
    chains.extend([
        EncodingChain(vec![Encoding::Lowercase, Encoding::Md5]),
        EncodingChain(vec![Encoding::Lowercase, Encoding::Sha1]),
        EncodingChain(vec![Encoding::Lowercase, Encoding::Sha256]),
        EncodingChain(vec![Encoding::StripSeparators, Encoding::Md5]),
        EncodingChain(vec![Encoding::StripSeparators, Encoding::Sha1]),
        EncodingChain(vec![Encoding::StripSeparators, Encoding::Uppercase]),
        EncodingChain(vec![Encoding::Base64, Encoding::Percent]),
        EncodingChain(vec![Encoding::Uppercase, Encoding::Md5]),
    ]);
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_encoding_transforms() {
        let v = "Jane.Conner@Example.COM";
        assert_eq!(Encoding::Plain.apply(v), v);
        assert_eq!(Encoding::Lowercase.apply(v), "jane.conner@example.com");
        assert_eq!(Encoding::Uppercase.apply(v), "JANE.CONNER@EXAMPLE.COM");
        assert!(Encoding::Percent.apply(v).contains("%40"));
        assert!(!Encoding::Base64.apply(v).is_empty());
        assert_eq!(Encoding::Hex.apply("ab"), "6162");
        assert_eq!(Encoding::Md5.apply(v).len(), 32);
        assert_eq!(Encoding::Sha1.apply(v).len(), 40);
        assert_eq!(Encoding::Sha256.apply(v).len(), 64);
    }

    #[test]
    fn strip_separators_for_identifiers() {
        assert_eq!(
            Encoding::StripSeparators.apply("02:00:4c:4f:4f:50"),
            "02004c4f4f50"
        );
        assert_eq!(
            Encoding::StripSeparators.apply("aaaa-bbbb-cccc"),
            "aaaabbbbcccc"
        );
        assert_eq!(
            Encoding::StripSeparators.apply("(617) 555-0142"),
            "6175550142"
        );
    }

    #[test]
    fn rot13_involution() {
        let v = "Hello, World 42!";
        assert_eq!(Encoding::Rot13.apply(&Encoding::Rot13.apply(v)), v);
    }

    #[test]
    fn chains_compose_left_to_right() {
        let chain = EncodingChain(vec![Encoding::Lowercase, Encoding::Md5]);
        assert_eq!(
            chain.apply("USER@EXAMPLE.COM"),
            Encoding::Md5.apply("user@example.com")
        );
        assert_eq!(chain.label(), "lowercase>md5");
    }

    #[test]
    fn search_chains_cover_tracker_conventions() {
        let chains = search_chains();
        assert!(chains.len() >= Encoding::ALL.len() + 5);
        // The gravatar-style chain must be present.
        assert!(chains
            .iter()
            .any(|c| c.0 == vec![Encoding::Lowercase, Encoding::Md5]));
    }
}

appvsweb_json::impl_json!(
    enum Encoding {
        Plain,
        Lowercase,
        Uppercase,
        Percent,
        FormPercent,
        Base64,
        Base64Url,
        Hex,
        Md5,
        Sha1,
        Sha256,
        StripSeparators,
        Rot13,
    }
);
appvsweb_json::impl_json!(newtype EncodingChain(Vec<Encoding>));
