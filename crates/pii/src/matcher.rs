//! Decoder-search ground-truth matching.
//!
//! Step 2 of the paper's detection procedure: "we augment [ReCon's]
//! results with PII found via direct string matching on known PII". The
//! matcher knows every ground-truth value and searches the flow for every
//! *transform* of every value:
//!
//! * all encodings/hashes in [`crate::encode::search_chains`]
//! * GPS coordinates at every precision from 2 to 6 decimals ("GPS
//!   locations are sent with arbitrary precision")
//! * short, ambiguous values (ZIP code, gender flag) only in key/value
//!   context with a type-appropriate key, to avoid false positives
//! * base64-looking blobs are decoded and re-searched (layered decoding)

use crate::aho::AhoCorasick;
use crate::encode::{search_chains, EncodingChain};
use crate::profile::GroundTruth;
use crate::tokenize::extract_kv;
use crate::types::PiiType;
use appvsweb_httpsim::codec;

/// Minimum candidate length for free-text (non-keyed) matching. Anything
/// shorter only matches in key/value context.
const MIN_FREE_TEXT_LEN: usize = 6;

/// One ground-truth match in a flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PiiFinding {
    /// The PII class found.
    pub pii_type: PiiType,
    /// The ground-truth value that matched (original, un-encoded form).
    pub value: String,
    /// Which transform chain produced the on-wire form.
    pub encoding: String,
    /// The key the value appeared under, when found in k/v context.
    pub key: Option<String>,
}

#[derive(Clone, Debug)]
struct Candidate {
    pii_type: PiiType,
    original: String,
    chain_label: String,
    encoded: String,
    /// Case-sensitive search? (hashes/base64 yes, text no)
    case_sensitive: bool,
    /// Eligible for free-text search, or k/v-context only?
    free_text: bool,
}

/// The ground-truth matcher for one session identity.
///
/// Construction compiles the candidate dictionary into two Aho–Corasick
/// automata (one case-insensitive for textual encodings, one byte-exact
/// for hash/base64 digests), so scanning a flow is a single pass over
/// its bytes regardless of dictionary size.
#[derive(Clone, Debug)]
pub struct GroundTruthMatcher {
    candidates: Vec<Candidate>,
    /// Case-insensitive automaton over lowercase patterns; values map
    /// back into `candidates`.
    ci_auto: AhoCorasick,
    ci_index: Vec<usize>,
    /// Byte-exact automaton for hash-like candidates.
    cs_auto: AhoCorasick,
    cs_index: Vec<usize>,
    /// Indices of k/v-context-only candidates (short values searched by
    /// key hint, not free text).
    short_index: Vec<usize>,
    /// Distinct PII types among `short_index`, for cheap per-pair
    /// hint dismissal.
    short_types: Vec<PiiType>,
}

impl GroundTruthMatcher {
    /// Precompute the search index for `truth`.
    // lint:allow(T1) matcher-side index construction: encodes ground truth to SEARCH for it; nothing leaves the process
    pub fn new(truth: &GroundTruth) -> Self {
        let chains = search_chains();
        let mut candidates = Vec::new();

        let mut add = |pii_type: PiiType, value: &str, chains: &[EncodingChain]| {
            if value.is_empty() {
                return;
            }
            for chain in chains {
                let encoded = chain.apply(value);
                if encoded.is_empty() {
                    continue;
                }
                let is_hashlike = chain.0.iter().any(|e| {
                    e.is_hash()
                        || matches!(
                            e,
                            crate::encode::Encoding::Base64
                                | crate::encode::Encoding::Base64Url
                                | crate::encode::Encoding::Hex
                        )
                });
                candidates.push(Candidate {
                    pii_type,
                    original: value.to_string(),
                    chain_label: chain.label(),
                    encoded: if is_hashlike {
                        encoded.clone()
                    } else {
                        encoded.to_ascii_lowercase()
                    },
                    case_sensitive: is_hashlike,
                    free_text: encoded.len() >= MIN_FREE_TEXT_LEN,
                });
            }
        };

        for (t, v) in truth.values() {
            add(t, &v, &chains);
        }
        // GPS at every precision 2..=6 (plain + percent only; nobody
        // hashes a coordinate).
        let coord_chains: Vec<EncodingChain> = vec![
            EncodingChain(vec![crate::encode::Encoding::Plain]),
            EncodingChain(vec![crate::encode::Encoding::Percent]),
            EncodingChain(vec![crate::encode::Encoding::FormPercent]),
        ];
        for decimals in 2..=6 {
            if let Some((lat, lon)) = truth.gps_at_precision(decimals) {
                add(PiiType::Location, &lat, &coord_chains);
                add(PiiType::Location, &lon, &coord_chains);
                add(PiiType::Location, &format!("{lat},{lon}"), &coord_chains);
            }
        }
        // Phone number digit-only form is handled by StripSeparators in
        // the standard chains; also add the dashed form.
        if !truth.phone.is_empty() {
            let digits: String = truth.phone.chars().filter(|c| c.is_ascii_digit()).collect();
            if digits.len() >= 10 {
                let dashed = format!("{}-{}-{}", &digits[..3], &digits[3..6], &digits[6..]);
                add(PiiType::PhoneNumber, &dashed, &coord_chains);
            }
        }

        // Compile the free-text dictionary into automata.
        let mut ci_patterns: Vec<&str> = Vec::new();
        let mut ci_index = Vec::new();
        let mut cs_patterns: Vec<&str> = Vec::new();
        let mut cs_index = Vec::new();
        for (i, c) in candidates.iter().enumerate() {
            if !c.free_text {
                continue;
            }
            if c.case_sensitive {
                cs_patterns.push(&c.encoded);
                cs_index.push(i);
            } else {
                ci_patterns.push(&c.encoded);
                ci_index.push(i);
            }
        }
        let ci_auto = AhoCorasick::new(&ci_patterns);
        let cs_auto = AhoCorasick::new(&cs_patterns);

        // Index the k/v-context-only candidates once: the scan loop
        // walks them for every pair whose key matches a hint, and the
        // distinct type list lets a pair be dismissed with a handful of
        // hint checks instead of one per candidate.
        let short_index: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.free_text)
            .map(|(i, _)| i)
            .collect();
        let mut short_types: Vec<PiiType> = short_index
            .iter()
            .map(|&i| candidates[i].pii_type)
            .collect();
        short_types.sort();
        short_types.dedup();

        GroundTruthMatcher {
            candidates,
            ci_auto,
            ci_index,
            cs_auto,
            cs_index,
            short_index,
            short_types,
        }
    }

    /// Number of precomputed candidates (index size).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Scan raw flow text for ground-truth PII.
    pub fn scan(&self, text: &str) -> Vec<PiiFinding> {
        let kv = extract_kv(text);
        let mut findings: Vec<PiiFinding> = Vec::new();

        // 1. Free-text search: both automata advance together in ONE
        // pass over the raw bytes. The case-insensitive walker folds
        // each byte on the fly, so the full lowercase copy of the flow
        // is never materialized. Hits are emitted in the same order as
        // two separate `present` passes would produce (all ci patterns
        // ascending, then all cs patterns ascending).
        let mut ci_seen = vec![false; self.ci_index.len()];
        let mut cs_seen = vec![false; self.cs_index.len()];
        let mut ci_walk = self.ci_auto.walker();
        let mut cs_walk = self.cs_auto.walker();
        for &b in text.as_bytes() {
            for &p in ci_walk.step(b.to_ascii_lowercase()) {
                ci_seen[p as usize] = true;
            }
            for &p in cs_walk.step(b) {
                cs_seen[p as usize] = true;
            }
        }
        let ci_hits = ci_seen
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(p, _)| self.ci_index[p]);
        let cs_hits = cs_seen
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(p, _)| self.cs_index[p]);
        for idx in ci_hits.chain(cs_hits) {
            let c = &self.candidates[idx];
            // Attribute a key when the value sits in a k/v pair.
            let key = kv
                .iter()
                .find(|(_, v)| {
                    if c.case_sensitive {
                        v.contains(&c.encoded)
                    } else {
                        v.to_ascii_lowercase().contains(&c.encoded)
                    }
                })
                .map(|(k, _)| k.clone());
            findings.push(PiiFinding {
                pii_type: c.pii_type,
                value: c.original.clone(),
                encoding: c.chain_label.clone(),
                key,
            });
        }

        // 2. Key-context search for short values (zip, gender, "M"/"F").
        // Pair-outer order: a pair whose key matches no short type's
        // hints (the overwhelmingly common case) is dismissed with a
        // handful of hint checks and zero allocations. Only pairs that
        // survive normalize their value — lowercase and percent-decoded
        // forms computed once per pair, not once per candidate — and
        // walk the short candidates of the matching types.
        for (k, v) in &kv {
            let hinted = |t: PiiType| t.key_hints().iter().any(|h| k == h || k.contains(h));
            if !self.short_types.iter().any(|&t| hinted(t)) {
                continue;
            }
            let v_lower = v.to_ascii_lowercase();
            let v_decoded = codec::percent_decode(v);
            let v_decoded_lower = codec::percent_decode(&v_lower);
            for &idx in &self.short_index {
                let c = &self.candidates[idx];
                if !hinted(c.pii_type) {
                    continue;
                }
                let (v_norm, v_norm_decoded) = if c.case_sensitive {
                    (v, &v_decoded)
                } else {
                    (&v_lower, &v_decoded_lower)
                };
                if *v_norm == c.encoded || *v_norm_decoded == c.encoded {
                    findings.push(PiiFinding {
                        pii_type: c.pii_type,
                        value: c.original.clone(),
                        encoding: c.chain_label.clone(),
                        key: Some(k.clone()),
                    });
                }
            }
        }

        // 3. Layered decode: base64-looking tokens are decoded and
        // re-searched for plain values.
        for token in tokenize_base64_blobs(text) {
            if let Some(decoded) = codec::base64_decode(token) {
                if let Ok(inner) = String::from_utf8(decoded) {
                    let inner_lower = inner.to_ascii_lowercase();
                    for c in self
                        .candidates
                        .iter()
                        .filter(|c| c.free_text && c.chain_label == "plain")
                    {
                        if inner_lower.contains(&c.encoded) {
                            findings.push(PiiFinding {
                                pii_type: c.pii_type,
                                value: c.original.clone(),
                                encoding: "base64(payload)".into(),
                                key: None,
                            });
                        }
                    }
                }
            }
        }

        dedup(findings)
    }

    /// The distinct PII types present in `text`.
    pub fn types_in(&self, text: &str) -> Vec<PiiType> {
        let mut types: Vec<PiiType> = self.scan(text).into_iter().map(|f| f.pii_type).collect();
        types.sort();
        types.dedup();
        types
    }
}

/// Tokens that plausibly hold base64 payloads: long, base64 charset.
/// `=` is treated as a delimiter (valid base64 only carries it as
/// trailing padding, and `key=value` syntax would otherwise glue the key
/// onto the blob); the decoder accepts unpadded input.
fn tokenize_base64_blobs(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '+' | '/' | '-' | '_')))
        .filter(|t| t.len() >= 16)
}

fn dedup(mut findings: Vec<PiiFinding>) -> Vec<PiiFinding> {
    findings.sort_by(|a, b| {
        (a.pii_type, &a.value, &a.encoding, &a.key).cmp(&(
            b.pii_type,
            &b.value,
            &b.encoding,
            &b.key,
        ))
    });
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoding;

    fn truth() -> GroundTruth {
        GroundTruth::synthetic(2016).with_device(
            "Nexus 5",
            &[
                ("imei", "354436069633711"),
                ("mac", "02:00:4c:4f:4f:50"),
                ("ad_id", "9d2a1f6c-0b51-4ef2-a1b0-cc9e34ad8f01"),
            ],
            Some((42.361145, -71.057083)),
        )
    }

    fn matcher() -> GroundTruthMatcher {
        GroundTruthMatcher::new(&truth())
    }

    #[test]
    fn finds_plain_email_in_query() {
        let t = truth();
        let text = format!("GET /t?email={}&x=1 HTTP/1.1", t.email);
        let found = matcher().scan(&text);
        assert!(found.iter().any(|f| f.pii_type == PiiType::Email
            && f.encoding == "plain"
            && f.key.as_deref() == Some("email")));
    }

    #[test]
    fn finds_percent_encoded_email() {
        let t = truth();
        let enc = Encoding::Percent.apply(&t.email);
        assert!(enc.contains("%40"));
        let found = matcher().scan(&format!("login={enc}"));
        assert!(found.iter().any(|f| f.pii_type == PiiType::Email));
    }

    #[test]
    fn finds_hashed_email_gravatar_style() {
        let t = truth();
        let digest = crate::hash::md5_hex(t.email.to_ascii_lowercase().as_bytes());
        let found = matcher().scan(&format!("POST /sync uid={digest}"));
        assert!(found
            .iter()
            .any(|f| f.pii_type == PiiType::Email && f.encoding == "lowercase>md5"));
    }

    #[test]
    fn finds_imei_and_stripped_mac() {
        let found = matcher().scan("id=354436069633711&wifi=02004c4f4f50");
        let uid_hits: Vec<_> = found
            .iter()
            .filter(|f| f.pii_type == PiiType::UniqueId)
            .collect();
        assert!(uid_hits.iter().any(|f| f.value == "354436069633711"));
        assert!(uid_hits
            .iter()
            .any(|f| f.value == "02:00:4c:4f:4f:50" && f.encoding == "stripseparators"));
    }

    #[test]
    fn finds_truncated_gps() {
        let found = matcher().scan("beacon?ll=42.36,-71.06&v=2");
        assert!(found.iter().any(|f| f.pii_type == PiiType::Location));
        let found_precise = matcher().scan("lat=42.3611&lon=-71.0571");
        assert!(found_precise
            .iter()
            .any(|f| f.pii_type == PiiType::Location));
    }

    #[test]
    fn zip_requires_key_context() {
        let t = truth();
        // ZIP floating in free text must NOT match (too short/ambiguous)…
        let free = matcher().scan(&format!("trace_id={}99887", t.zip));
        assert!(!free.iter().any(|f| f.pii_type == PiiType::Location));
        // …but zip=<value> does.
        let keyed = matcher().scan(&format!("zip={}", t.zip));
        assert!(keyed.iter().any(|f| f.pii_type == PiiType::Location));
    }

    #[test]
    fn gender_requires_key_context() {
        let t = truth();
        let keyed = matcher().scan(&format!("gender={}", t.gender));
        assert!(keyed.iter().any(|f| f.pii_type == PiiType::Gender));
        let unkeyed = matcher().scan(&format!("csrf={}", t.gender));
        assert!(!unkeyed.iter().any(|f| f.pii_type == PiiType::Gender));
    }

    #[test]
    fn finds_pii_inside_base64_payload() {
        let t = truth();
        let payload = format!("{{\"user\":{{\"email\":\"{}\"}}}}", t.email);
        let blob = codec::base64_encode(payload.as_bytes());
        let found = matcher().scan(&format!("POST /batch data={blob}"));
        assert!(found
            .iter()
            .any(|f| f.pii_type == PiiType::Email && f.encoding == "base64(payload)"));
    }

    #[test]
    fn clean_flow_has_no_findings() {
        let found = matcher().scan("GET /v2/weather?city=boston&units=metric HTTP/1.1");
        assert!(found.is_empty(), "unexpected findings: {found:?}");
    }

    #[test]
    fn phone_dashed_form() {
        let t = truth();
        let digits: String = t.phone.chars().filter(|c| c.is_ascii_digit()).collect();
        let dashed = format!("{}-{}-{}", &digits[..3], &digits[3..6], &digits[6..]);
        let found = matcher().scan(&format!("tel={dashed}"));
        assert!(found.iter().any(|f| f.pii_type == PiiType::PhoneNumber));
    }

    #[test]
    fn types_in_aggregates() {
        let t = truth();
        let text = format!("email={}&lat=42.3611&adid={}", t.email, t.device_ids[2].1);
        let types = matcher().types_in(&text);
        assert!(types.contains(&PiiType::Email));
        assert!(types.contains(&PiiType::Location));
        assert!(types.contains(&PiiType::UniqueId));
    }
}

appvsweb_json::impl_json!(struct PiiFinding { pii_type, value, encoding, key });
