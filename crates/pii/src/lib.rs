//! # appvsweb-pii
//!
//! PII ground truth, encodings, and leak *detection* for the `appvsweb`
//! reproduction of *"Should You Use the App for That?"* (IMC 2016).
//!
//! The paper identifies PII in network traffic with a three-step
//! procedure (§3.2 "Identifying PII"):
//!
//! 1. the **ReCon** machine-learning detector (bag-of-words features,
//!    per-destination decision-tree classifiers) flags flows likely to
//!    carry PII without knowing the values;
//! 2. **direct string matching** on the known ground-truth PII catches
//!    what the classifier misses — including values hidden under common
//!    encodings (percent, base64, hex, MD5/SHA hashes, case folding,
//!    truncated GPS precision);
//! 3. **manual verification** removes false positives using the
//!    ground-truth information.
//!
//! This crate implements all three from scratch:
//!
//! * [`types`] — the PII taxonomy of Table 1 (B D E G L N P# U PW UID)
//! * [`profile`] — deterministic test-account + device ground truth
//! * [`hash`] — MD5 / SHA-1 / SHA-256 (hashed identifiers are a standard
//!   tracker obfuscation)
//! * [`encode`] — the encoder zoo and composable encoding chains
//! * [`tokenize`] — flow tokenization and key/value extraction
//! * [`aho`] — an Aho–Corasick multi-pattern automaton (the matcher's
//!   single-pass scanning engine)
//! * [`matcher`] — decoder-search ground-truth matching
//! * [`recon`] — the from-scratch decision-tree learner and per-domain
//!   classifier ensemble
//! * [`detector`] — the combined pipeline with verification, exactly the
//!   paper's three steps in order
//! * [`eval`] — a labelled-corpus harness measuring detector
//!   precision/recall per PII type and per encoding

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aho;
pub mod cache;
pub mod detector;
pub mod encode;
pub mod eval;
pub mod fuzz;
pub mod hash;
pub mod matcher;
pub mod profile;
pub mod recon;
pub mod tokenize;
pub mod types;

pub use cache::{CacheStats, CompiledDictionary};
pub use detector::{CombinedDetector, Detection, DetectorReport};
pub use encode::Encoding;
pub use matcher::{GroundTruthMatcher, PiiFinding};
pub use profile::GroundTruth;
pub use types::PiiType;
