//! Ground-truth PII profiles.
//!
//! The experiments are controlled: "we know all the PII that is available
//! on our test devices" (§3.2). A [`GroundTruth`] is that knowledge for
//! one (device, account) pair — the account fields created when signing
//! up for a service, plus the device identifiers and the current GPS fix.

use crate::types::PiiType;
use appvsweb_netsim::SimRng;

/// Everything the testbed knows about the identity used in a session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroundTruth {
    /// Account first name.
    pub first_name: String,
    /// Account last name.
    pub last_name: String,
    /// E-mail (previously unused, per methodology).
    pub email: String,
    /// Username.
    pub username: String,
    /// Password.
    pub password: String,
    /// Gender as entered at signup (`"F"` / `"M"` plus word forms).
    pub gender: String,
    /// Birthday in ISO form `YYYY-MM-DD`.
    pub birthday: String,
    /// Phone number in `(NXX) NXX-XXXX` display form.
    pub phone: String,
    /// ZIP code.
    pub zip: String,
    /// GPS fix (latitude, longitude), if location is available.
    pub gps: Option<(f64, f64)>,
    /// Device hardware model ("Nexus 5", "iPhone 5").
    pub device_model: String,
    /// Device unique identifiers as `(label, value)` pairs
    /// (imei / mac / ad_id / android_id / vendor_id / serial).
    pub device_ids: Vec<(String, String)>,
}

const FIRST_NAMES: &[&str] = &[
    "Jane", "Alex", "Morgan", "Riley", "Casey", "Jordan", "Taylor", "Avery", "Quinn", "Dana",
];
const LAST_NAMES: &[&str] = &[
    "Conner",
    "Whitfield",
    "Marsh",
    "Delgado",
    "Okafor",
    "Lindgren",
    "Barrett",
    "Soto",
    "Hale",
    "Kovacs",
];
const MAILBOX_ADJECTIVES: &[&str] = &[
    "amber", "cobalt", "crimson", "indigo", "mauve", "ochre", "sable", "teal", "umber", "viridian",
];
const MAILBOX_NOUNS: &[&str] = &[
    "falcon", "harbor", "lantern", "meadow", "orchid", "quartz", "saddle", "thicket", "walnut",
    "zephyr",
];

impl GroundTruth {
    /// Generate a synthetic test account deterministically from `seed`.
    /// Device fields are filled separately with
    /// [`GroundTruth::with_device`].
    pub fn synthetic(seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x5eed_f00d);
        let first = FIRST_NAMES[rng.below(FIRST_NAMES.len() as u64) as usize].to_string();
        let last = LAST_NAMES[rng.below(LAST_NAMES.len() as u64) as usize].to_string();
        let tag: u32 = rng.range(100, 9998) as u32;
        // Mailbox and username are deliberately unrelated to the name:
        // the methodology needs each ground-truth value to be separately
        // detectable, so one leak must not imply another by substring.
        let adjective = MAILBOX_ADJECTIVES[rng.below(MAILBOX_ADJECTIVES.len() as u64) as usize];
        let noun = MAILBOX_NOUNS[rng.below(MAILBOX_NOUNS.len() as u64) as usize];
        let email = format!("{adjective}.{noun}.{tag}@testmail.example");
        let username = format!("{noun}{adjective}{tag}");
        let password = format!("Tr0ub4dor-{:06}!", rng.below(1_000_000));
        let gender = if rng.chance(0.5) { "F" } else { "M" }.to_string();
        let birthday = format!(
            "{:04}-{:02}-{:02}",
            rng.range(1970, 1997),
            rng.range(1, 12),
            rng.range(1, 28)
        );
        let phone = format!("(617) {:03}-{:04}", rng.range(200, 999), rng.below(10_000));
        let zip = format!("021{:02}", rng.range(8, 39)); // Boston-area ZIPs
        GroundTruth {
            first_name: first,
            last_name: last,
            email,
            username,
            password,
            gender,
            birthday,
            phone,
            zip,
            gps: None,
            device_model: String::new(),
            device_ids: vec![],
        }
    }

    /// Attach device facts (builder style).
    pub fn with_device(
        mut self,
        model: &str,
        ids: &[(&str, &str)],
        gps: Option<(f64, f64)>,
    ) -> Self {
        self.device_model = model.to_string();
        self.device_ids = ids
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.gps = gps;
        self
    }

    /// Full name, as entered into profile forms.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first_name, self.last_name)
    }

    /// GPS coordinates rendered at a given decimal precision — services
    /// transmit "arbitrary precision", so the matcher needs variants.
    pub fn gps_at_precision(&self, decimals: usize) -> Option<(String, String)> {
        self.gps
            .map(|(lat, lon)| (format!("{lat:.decimals$}"), format!("{lon:.decimals$}")))
    }

    /// Every known value, labelled with its PII type. Multi-valued types
    /// yield several entries (first + last + full name; lat + lon + zip;
    /// one entry per device identifier).
    pub fn values(&self) -> Vec<(PiiType, String)> {
        let mut out = vec![
            (PiiType::Name, self.first_name.clone()),
            (PiiType::Name, self.last_name.clone()),
            (PiiType::Name, self.full_name()),
            (PiiType::Email, self.email.clone()),
            (PiiType::Username, self.username.clone()),
            (PiiType::Password, self.password.clone()),
            (PiiType::Gender, self.gender.clone()),
            (PiiType::Birthday, self.birthday.clone()),
            (PiiType::PhoneNumber, self.phone.clone()),
            (PiiType::Location, self.zip.clone()),
        ];
        if let Some((lat, lon)) = self.gps_at_precision(6) {
            out.push((PiiType::Location, lat));
            out.push((PiiType::Location, lon));
        }
        if !self.device_model.is_empty() {
            out.push((PiiType::DeviceInfo, self.device_model.clone()));
        }
        for (_, v) in &self.device_ids {
            out.push((PiiType::UniqueId, v.clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(GroundTruth::synthetic(7), GroundTruth::synthetic(7));
        assert_ne!(
            GroundTruth::synthetic(7).email,
            GroundTruth::synthetic(8).email
        );
    }

    #[test]
    fn formats_look_plausible() {
        let gt = GroundTruth::synthetic(42);
        assert!(gt.email.contains('@'));
        assert_eq!(gt.birthday.len(), 10);
        assert!(gt.phone.starts_with("(617)"));
        assert_eq!(gt.zip.len(), 5);
        assert!(gt.zip.starts_with("021"));
        assert!(matches!(gt.gender.as_str(), "F" | "M"));
    }

    #[test]
    fn device_attachment_and_values() {
        let gt = GroundTruth::synthetic(1).with_device(
            "Nexus 5",
            &[("imei", "123456789012345"), ("ad_id", "aaaa-bbbb")],
            Some((42.360123, -71.058456)),
        );
        let values = gt.values();
        let uids: Vec<_> = values
            .iter()
            .filter(|(t, _)| *t == PiiType::UniqueId)
            .collect();
        assert_eq!(uids.len(), 2);
        assert!(values
            .iter()
            .any(|(t, v)| *t == PiiType::DeviceInfo && v == "Nexus 5"));
        let locs: Vec<_> = values
            .iter()
            .filter(|(t, _)| *t == PiiType::Location)
            .collect();
        assert_eq!(locs.len(), 3, "zip + lat + lon");
    }

    #[test]
    fn gps_precision_variants() {
        let gt = GroundTruth::synthetic(1).with_device("x", &[], Some((42.361145, -71.057083)));
        let (lat2, lon2) = gt.gps_at_precision(2).unwrap();
        assert_eq!(lat2, "42.36");
        assert_eq!(lon2, "-71.06");
        let (lat6, _) = gt.gps_at_precision(6).unwrap();
        assert_eq!(lat6, "42.361145");
        assert!(GroundTruth::synthetic(1).gps_at_precision(2).is_none());
    }
}

appvsweb_json::impl_json!(struct GroundTruth {
    first_name, last_name, email, username, password, gender, birthday, phone, zip, gps,
    device_model, device_ids
});
