//! The combined detection pipeline.
//!
//! §3.2, verbatim: "First, we use the automated ReCon tool, which uses
//! machine learning to detect likely PII in network traffic without
//! needing to know the precise PII values. Second, to minimize the risk
//! of ReCon missing PII, we augment its results with PII found via direct
//! string matching on known PII. Finally, we manually verify ReCon
//! predictions and excluded false positives based on our ground-truth
//! information."
//!
//! [`CombinedDetector`] runs those three steps in order. The "manual"
//! verification step is mechanized: a ReCon prediction survives only if
//! the ground truth corroborates it — either the matcher found the same
//! type in the flow, or the value ReCon extracts from key/value context
//! equals a known ground-truth value under some encoding.

use crate::cache::CompiledDictionary;
use crate::matcher::{GroundTruthMatcher, PiiFinding};
use crate::profile::GroundTruth;
use crate::recon::ReconClassifier;
use crate::types::PiiType;
use std::sync::Arc;

/// Which stage(s) of the pipeline produced a detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// Only the ground-truth matcher found it.
    Matcher,
    /// Only ReCon flagged it (and verification corroborated it).
    Recon,
    /// Both stages agree.
    Both,
}

/// One verified PII detection in a flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Detection {
    /// The PII class.
    pub pii_type: PiiType,
    /// Stage attribution.
    pub source: Source,
    /// Matcher-level findings backing this detection (empty for
    /// ReCon-only detections).
    pub findings: Vec<PiiFinding>,
}

/// Report for one scanned flow.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DetectorReport {
    /// Verified detections, sorted by type.
    pub detections: Vec<Detection>,
    /// ReCon predictions rejected during verification (the pipeline's
    /// false-positive count — reported in the ablation benches).
    pub rejected_predictions: Vec<PiiType>,
}

impl DetectorReport {
    /// The distinct verified PII types.
    pub fn types(&self) -> Vec<PiiType> {
        self.detections.iter().map(|d| d.pii_type).collect()
    }

    /// Whether any PII was found.
    pub fn any(&self) -> bool {
        !self.detections.is_empty()
    }
}

/// The three-step detection pipeline.
pub struct CombinedDetector {
    dict: Arc<CompiledDictionary>,
    recon: Option<ReconClassifier>,
}

impl CombinedDetector {
    /// Build the pipeline for one session identity. Pass `None` for
    /// `recon` to run matcher-only (one arm of the ablation). The
    /// compiled dictionary (matcher automata + verification variants)
    /// comes from the process-wide [`crate::cache`], so repeated
    /// constructions over the same identity share one compilation.
    pub fn new(truth: &GroundTruth, recon: Option<ReconClassifier>) -> Self {
        CombinedDetector {
            dict: crate::cache::compiled(truth),
            recon,
        }
    }

    /// Access the underlying matcher (for matcher-only pipelines).
    pub fn matcher(&self) -> &GroundTruthMatcher {
        &self.dict.matcher
    }

    /// Scan one flow to `domain` whose raw text is `text`.
    pub fn scan(&self, domain: &str, text: &str) -> DetectorReport {
        // Step 2 (run first because it is exact): string matching.
        let findings = self.dict.matcher.scan(text);
        let mut matched_types: Vec<PiiType> = findings.iter().map(|f| f.pii_type).collect();
        matched_types.sort();
        matched_types.dedup();

        // Step 1: ReCon predictions.
        let predictions: Vec<PiiType> = match &self.recon {
            Some(clf) => clf.predict(domain, text),
            None => vec![],
        };

        // Step 3: verification — keep predictions corroborated by ground
        // truth, reject the rest.
        let mut rejected = Vec::new();
        let mut verified_recon = Vec::new();
        for t in predictions {
            if matched_types.contains(&t) {
                verified_recon.push(t); // corroborated by the matcher
            } else if self.kv_value_matches_truth(t, text) {
                verified_recon.push(t); // value checks out under some encoding
            } else {
                rejected.push(t);
            }
        }

        let mut detections = Vec::new();
        for t in PiiType::ALL {
            let in_match = matched_types.contains(&t);
            let in_recon = verified_recon.contains(&t);
            if !in_match && !in_recon {
                continue;
            }
            // (false, false) was filtered out by the `continue` above.
            let source = match (in_match, in_recon) {
                (true, true) => Source::Both,
                (true, false) => Source::Matcher,
                _ => Source::Recon,
            };
            detections.push(Detection {
                pii_type: t,
                source,
                findings: findings
                    .iter()
                    .filter(|f| f.pii_type == t)
                    .cloned()
                    .collect(),
            });
        }

        DetectorReport {
            detections,
            rejected_predictions: rejected,
        }
    }

    /// Does any k/v value under a `t`-hinted key equal a ground-truth
    /// variant of `t`?
    fn kv_value_matches_truth(&self, t: PiiType, text: &str) -> bool {
        let kv = crate::tokenize::extract_kv(text);
        for (k, v) in kv {
            if !t.key_hints().iter().any(|h| k == *h || k.contains(h)) {
                continue;
            }
            let v = v.to_ascii_lowercase();
            if self
                .dict
                .variants
                .iter()
                .any(|(tt, variant)| *tt == t && !variant.is_empty() && v == *variant)
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recon::{ReconTrainer, TrainingFlow, TreeConfig};
    use std::collections::BTreeSet;

    fn truth() -> GroundTruth {
        GroundTruth::synthetic(99).with_device(
            "iPhone 5",
            &[("idfa", "AAAABBBB-CCCC-DDDD-EEEE-FFFF00001111")],
            Some((42.35, -71.06)),
        )
    }

    fn trained_recon() -> ReconClassifier {
        let mut trainer = ReconTrainer::new();
        for i in 0..16 {
            let has = i % 2 == 0;
            trainer.add(TrainingFlow {
                domain: "ads.tracker.com".into(),
                text: if has {
                    format!("email=user{i}@x.com&v={i}")
                } else {
                    format!("v={i}&page=home")
                },
                labels: if has {
                    [PiiType::Email].into_iter().collect()
                } else {
                    BTreeSet::new()
                },
            });
        }
        trainer.train(&TreeConfig::default())
    }

    #[test]
    fn matcher_only_detection() {
        let t = truth();
        let det = CombinedDetector::new(&t, None);
        let report = det.scan("ads.tracker.com", &format!("uid=1&email={}", t.email));
        assert_eq!(report.types(), vec![PiiType::Email]);
        assert_eq!(report.detections[0].source, Source::Matcher);
        assert!(!report.detections[0].findings.is_empty());
    }

    #[test]
    fn recon_and_matcher_agree() {
        let t = truth();
        let det = CombinedDetector::new(&t, Some(trained_recon()));
        let report = det.scan("ads.tracker.com", &format!("email={}&v=1", t.email));
        assert_eq!(report.detections[0].source, Source::Both);
        assert!(report.rejected_predictions.is_empty());
    }

    #[test]
    fn recon_prediction_verified_by_kv_value() {
        let t = truth();
        let det = CombinedDetector::new(&t, Some(trained_recon()));
        // The flow carries the REAL email but uppercased in a way the
        // structural model recognizes by the "email" key. The matcher's
        // lowercase candidate also finds it, so craft a harder case:
        // matcher disabled by scanning with recon only on structure.
        // Here we verify the kv-verification path directly.
        assert!(det.kv_value_matches_truth(
            PiiType::Email,
            &format!("email={}", t.email.to_ascii_uppercase())
        ));
        assert!(!det.kv_value_matches_truth(PiiType::Email, "email=notme@else.org"));
    }

    #[test]
    fn unverifiable_recon_prediction_is_rejected() {
        let t = truth();
        let det = CombinedDetector::new(&t, Some(trained_recon()));
        // Flow matches ReCon's structural signature ("email" token) but
        // carries somebody else's address — the controlled experiment
        // knows it is not our PII, so the prediction must be rejected.
        let report = det.scan("ads.tracker.com", "email=stranger@other.org&v=1");
        assert!(report.detections.is_empty());
        assert_eq!(report.rejected_predictions, vec![PiiType::Email]);
    }

    #[test]
    fn clean_flow_clean_report() {
        let det = CombinedDetector::new(&truth(), Some(trained_recon()));
        let report = det.scan("cdn.static.com", "GET /app.css HTTP/1.1");
        assert!(!report.any());
        assert!(report.rejected_predictions.is_empty());
    }

    #[test]
    fn multiple_types_in_one_flow() {
        let t = truth();
        let det = CombinedDetector::new(&t, None);
        let text = format!(
            "POST /collect email={}&lat=42.35&lon=-71.06&idfa={}",
            t.email, t.device_ids[0].1
        );
        let report = det.scan("x.com", &text);
        let types = report.types();
        assert!(types.contains(&PiiType::Email));
        assert!(types.contains(&PiiType::Location));
        assert!(types.contains(&PiiType::UniqueId));
    }
}

appvsweb_json::impl_json!(
    enum Source {
        Matcher,
        Recon,
        Both,
    }
);
appvsweb_json::impl_json!(struct Detection { pii_type, source, findings });
appvsweb_json::impl_json!(struct DetectorReport { detections, rejected_predictions });
