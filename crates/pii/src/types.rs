//! The PII taxonomy.
//!
//! Table 1 of the paper tracks ten identifier classes, abbreviated
//! B D E G L N P# U PW UID. [`PiiType`] reproduces that taxonomy exactly;
//! every table and figure in the reproduction is keyed on it.

use std::fmt;

/// A class of personally identifiable information.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PiiType {
    /// **B** — birthday / date of birth.
    Birthday,
    /// **D** — device info: hardware model or device name.
    DeviceInfo,
    /// **E** — e-mail address.
    Email,
    /// **G** — gender.
    Gender,
    /// **L** — location: GPS coordinates or ZIP code.
    Location,
    /// **N** — first and/or last name.
    Name,
    /// **P#** — phone number.
    PhoneNumber,
    /// **U** — username.
    Username,
    /// **PW** — password.
    Password,
    /// **UID** — unique identifier: IMEI, MAC, advertising ID, Android
    /// ID, vendor ID, serial. Only apps can read these, which drives the
    /// paper's headline finding that device identifiers leak exclusively
    /// via apps.
    UniqueId,
}

impl PiiType {
    /// All types, in Table 1 column order.
    pub const ALL: [PiiType; 10] = [
        PiiType::Birthday,
        PiiType::DeviceInfo,
        PiiType::Email,
        PiiType::Gender,
        PiiType::Location,
        PiiType::Name,
        PiiType::PhoneNumber,
        PiiType::Username,
        PiiType::Password,
        PiiType::UniqueId,
    ];

    /// The column abbreviation used in Table 1.
    pub fn abbrev(self) -> &'static str {
        match self {
            PiiType::Birthday => "B",
            PiiType::DeviceInfo => "D",
            PiiType::Email => "E",
            PiiType::Gender => "G",
            PiiType::Location => "L",
            PiiType::Name => "N",
            PiiType::PhoneNumber => "P#",
            PiiType::Username => "U",
            PiiType::Password => "PW",
            PiiType::UniqueId => "UID",
        }
    }

    /// Human-readable label (Table 3 row names).
    pub fn label(self) -> &'static str {
        match self {
            PiiType::Birthday => "Birthday",
            PiiType::DeviceInfo => "Device Name",
            PiiType::Email => "Email",
            PiiType::Gender => "Gender",
            PiiType::Location => "Location",
            PiiType::Name => "Name",
            PiiType::PhoneNumber => "Phone #",
            PiiType::Username => "Username",
            PiiType::Password => "Password",
            PiiType::UniqueId => "Unique ID",
        }
    }

    /// Whether this type is a login credential. Credentials sent to a
    /// first party over HTTPS are *not* leaks under the paper's
    /// definition ("If a username, password, or e-mail address (often
    /// used as a username) is transmitted to a first-party site over
    /// HTTPS, then we do not consider them to be leaks").
    pub fn is_credential(self) -> bool {
        matches!(self, PiiType::Username | PiiType::Password | PiiType::Email)
    }

    /// Key-name hints associated with this type — used both by the
    /// matcher (to disambiguate short values like ZIP codes and gender
    /// flags) and by the ReCon feature extractor.
    pub fn key_hints(self) -> &'static [&'static str] {
        match self {
            PiiType::Birthday => &["birthday", "birthdate", "dob", "birth", "bday"],
            PiiType::DeviceInfo => &["device", "model", "hardware", "devicename", "device_name"],
            PiiType::Email => &["email", "e-mail", "mail", "login", "user"],
            PiiType::Gender => &["gender", "sex", "g"],
            PiiType::Location => &[
                "lat",
                "latitude",
                "lon",
                "lng",
                "longitude",
                "loc",
                "location",
                "geo",
                "zip",
                "zipcode",
                "postal",
                "postalcode",
                "ll",
            ],
            PiiType::Name => &[
                "name",
                "firstname",
                "lastname",
                "first_name",
                "last_name",
                "fname",
                "lname",
                "fullname",
            ],
            PiiType::PhoneNumber => &["phone", "tel", "mobile", "msisdn", "phonenumber"],
            PiiType::Username => &["username", "user", "uname", "login", "account"],
            PiiType::Password => &["password", "pass", "pwd", "passwd", "secret"],
            PiiType::UniqueId => &[
                "imei",
                "mac",
                "androidid",
                "android_id",
                "idfa",
                "idfv",
                "advertisingid",
                "ad_id",
                "adid",
                "gaid",
                "aid",
                "uuid",
                "uid",
                "device_id",
                "deviceid",
                "serial",
            ],
        }
    }
}

impl fmt::Display for PiiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_ordered() {
        assert_eq!(PiiType::ALL.len(), 10);
        let abbrevs: Vec<_> = PiiType::ALL.iter().map(|t| t.abbrev()).collect();
        assert_eq!(
            abbrevs,
            vec!["B", "D", "E", "G", "L", "N", "P#", "U", "PW", "UID"]
        );
    }

    #[test]
    fn credential_classes() {
        assert!(PiiType::Password.is_credential());
        assert!(PiiType::Username.is_credential());
        assert!(PiiType::Email.is_credential());
        assert!(!PiiType::Location.is_credential());
        assert!(!PiiType::UniqueId.is_credential());
    }

    #[test]
    fn key_hints_nonempty() {
        for t in PiiType::ALL {
            assert!(!t.key_hints().is_empty(), "{t} needs key hints");
        }
    }
}

appvsweb_json::impl_json!(
    enum PiiType {
        Birthday,
        DeviceInfo,
        Email,
        Gender,
        Location,
        Name,
        PhoneNumber,
        Username,
        Password,
        UniqueId,
    }
);
