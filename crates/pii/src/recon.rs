//! The ReCon-style machine-learning detector, from scratch.
//!
//! ReCon (Ren et al., MobiSys 2016) detects "likely PII in network
//! traffic without needing to know the precise PII values": flows are
//! tokenized into bag-of-words features and per-destination-domain
//! decision-tree classifiers (C4.5 in the original) are trained on
//! labelled flows, with a general classifier as fallback for domains with
//! too little training data. This module implements that design:
//!
//! * [`DecisionTree`] — a binary decision tree over token-presence
//!   features, grown by information gain with depth / minimum-sample /
//!   purity stopping rules
//! * [`ReconTrainer`] / [`ReconClassifier`] — the per-domain ensemble,
//!   one binary tree per (domain, PII type), plus general fallback trees
//! * value-extraction heuristics that pull the suspected value out of a
//!   flagged flow via key/value context

use crate::tokenize::{extract_kv, token_set};
use crate::types::PiiType;
use std::collections::{BTreeMap, BTreeSet};

/// Tree-growing parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum examples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum information gain to accept a split.
    pub min_gain: f64,
    /// Vocabulary cap: keep only the `max_features` tokens with the
    /// highest root information gain before growing the tree (0 = no
    /// cap). ReCon prunes its bag-of-words the same way — flow
    /// vocabularies are huge and mostly uninformative.
    pub max_features: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            min_gain: 1e-3,
            max_features: 256,
        }
    }
}

/// A node in the tree.
#[derive(Clone, Debug)]
enum Node {
    /// Leaf with the positive-class probability at this node.
    Leaf(f64),
    /// Split on presence of a token.
    Split {
        token: String,
        /// Subtree when the token is present.
        present: Box<Node>,
        /// Subtree when absent.
        absent: Box<Node>,
    },
}

/// A binary decision tree over token-presence features.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    root: Node,
    /// Number of training examples the tree saw.
    pub trained_on: usize,
}

fn entropy(pos: usize, neg: usize) -> f64 {
    let n = (pos + neg) as f64;
    if pos == 0 || neg == 0 {
        return 0.0;
    }
    let p = pos as f64 / n;
    let q = neg as f64 / n;
    -(p * p.log2() + q * q.log2())
}

impl DecisionTree {
    /// Train on `(token_set, label)` examples. Token sets must be
    /// deduplicated (as produced by [`crate::tokenize::token_set`]).
    pub fn train(examples: &[(BTreeSet<String>, bool)], config: &TreeConfig) -> Self {
        // Feature selection: rank tokens by information gain at the root
        // and restrict splits to the top `max_features`.
        let vocabulary = select_features(examples, config.max_features);
        let filtered: Vec<(BTreeSet<String>, bool)> = match &vocabulary {
            Some(vocab) => examples
                .iter()
                .map(|(tokens, label)| {
                    (
                        tokens
                            .iter()
                            .filter(|t| vocab.contains(*t))
                            .cloned()
                            .collect(),
                        *label,
                    )
                })
                .collect(),
            None => examples.to_vec(),
        };
        let indices: Vec<usize> = (0..filtered.len()).collect();
        let root = Self::grow(&filtered, &indices, config, 0);
        DecisionTree {
            root,
            trained_on: examples.len(),
        }
    }

    fn grow(
        examples: &[(BTreeSet<String>, bool)],
        indices: &[usize],
        config: &TreeConfig,
        depth: usize,
    ) -> Node {
        let pos = indices.iter().filter(|&&i| examples[i].1).count();
        let neg = indices.len() - pos;
        let p_here = if indices.is_empty() {
            0.0
        } else {
            pos as f64 / indices.len() as f64
        };

        if depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || pos == 0
            || neg == 0
        {
            return Node::Leaf(p_here);
        }

        // Candidate features: tokens present in at least one in-node
        // example but not all (otherwise no split is possible).
        let mut counts: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for &i in indices {
            for tok in &examples[i].0 {
                let e = counts.entry(tok.as_str()).or_insert((0, 0));
                e.0 += 1;
                if examples[i].1 {
                    e.1 += 1;
                }
            }
        }

        let base = entropy(pos, neg);
        let mut best: Option<(&str, f64)> = None;
        for (tok, &(present_total, present_pos)) in &counts {
            if present_total == 0 || present_total == indices.len() {
                continue;
            }
            let absent_total = indices.len() - present_total;
            let absent_pos = pos - present_pos;
            let h = (present_total as f64 / indices.len() as f64)
                * entropy(present_pos, present_total - present_pos)
                + (absent_total as f64 / indices.len() as f64)
                    * entropy(absent_pos, absent_total - absent_pos);
            let gain = base - h;
            if gain > config.min_gain && best.is_none_or(|(_, g)| gain > g) {
                best = Some((tok, gain));
            }
        }

        let Some((token, _)) = best else {
            return Node::Leaf(p_here);
        };
        let token = token.to_string();

        let (with, without): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| examples[i].0.contains(&token));
        let present = Self::grow(examples, &with, config, depth + 1);
        let absent = Self::grow(examples, &without, config, depth + 1);
        Node::Split {
            token,
            present: Box::new(present),
            absent: Box::new(absent),
        }
    }

    /// Positive-class probability for a token set.
    pub fn score(&self, tokens: &BTreeSet<String>) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(p) => return *p,
                Node::Split {
                    token,
                    present,
                    absent,
                } => {
                    node = if tokens.contains(token) {
                        present
                    } else {
                        absent
                    };
                }
            }
        }
    }

    /// Binary prediction at the 0.5 threshold.
    pub fn predict(&self, tokens: &BTreeSet<String>) -> bool {
        self.score(tokens) >= 0.5
    }

    /// Tree depth (longest path), for diagnostics.
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 0,
                Node::Split {
                    present, absent, ..
                } => 1 + d(present).max(d(absent)),
            }
        }
        d(&self.root)
    }
}

/// Rank every token by root information gain and keep the top `k`
/// (`None` when no cap applies or the vocabulary is already small).
fn select_features(examples: &[(BTreeSet<String>, bool)], k: usize) -> Option<BTreeSet<String>> {
    if k == 0 {
        return None;
    }
    let total = examples.len();
    let pos_total = examples.iter().filter(|(_, l)| *l).count();
    let mut counts: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (tokens, label) in examples {
        for tok in tokens {
            let e = counts.entry(tok.as_str()).or_insert((0, 0));
            e.0 += 1;
            if *label {
                e.1 += 1;
            }
        }
    }
    if counts.len() <= k {
        return None;
    }
    let base = entropy(pos_total, total - pos_total);
    let mut scored: Vec<(f64, &str)> = counts
        .iter()
        .filter(|(_, (present, _))| *present > 0 && *present < total)
        .map(|(tok, &(present, present_pos))| {
            let absent = total - present;
            let absent_pos = pos_total - present_pos;
            let h = (present as f64 / total as f64) * entropy(present_pos, present - present_pos)
                + (absent as f64 / total as f64) * entropy(absent_pos, absent - absent_pos);
            (base - h, *tok)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(b.1)));
    Some(
        scored
            .into_iter()
            .take(k)
            .map(|(_, t)| t.to_string())
            .collect(),
    )
}

/// One labelled training flow.
#[derive(Clone, Debug)]
pub struct TrainingFlow {
    /// Destination domain (registrable), the per-domain model key.
    pub domain: String,
    /// Raw flow text.
    pub text: String,
    /// PII types actually present (labels from the ground-truth matcher).
    pub labels: BTreeSet<PiiType>,
}

impl TrainingFlow {
    fn text_tokens(&self) -> BTreeSet<String> {
        token_set(&self.text).into_iter().collect()
    }
}

/// Minimum flows a domain needs for its own models; below this the
/// general model handles it (ReCon uses the same fallback structure).
pub const MIN_DOMAIN_FLOWS: usize = 8;

/// Accumulates labelled flows and trains the ensemble.
#[derive(Default)]
pub struct ReconTrainer {
    flows: Vec<TrainingFlow>,
}

impl ReconTrainer {
    /// An empty trainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a labelled flow.
    pub fn add(&mut self, flow: TrainingFlow) {
        self.flows.push(flow);
    }

    /// Number of accumulated training flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the trainer has no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Train per-domain and general models.
    pub fn train(&self, config: &TreeConfig) -> ReconClassifier {
        let tokenized: Vec<(String, BTreeSet<String>, &BTreeSet<PiiType>)> = self
            .flows
            .iter()
            .map(|f| (f.domain.clone(), f.text_tokens(), &f.labels))
            .collect();

        let mut by_domain: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, (domain, _, _)) in tokenized.iter().enumerate() {
            by_domain.entry(domain.clone()).or_default().push(i);
        }

        let train_set = |indices: &[usize], t: PiiType| -> Option<DecisionTree> {
            let positives = indices
                .iter()
                .filter(|&&i| tokenized[i].2.contains(&t))
                .count();
            // Need both classes to learn anything.
            if positives == 0 || positives == indices.len() {
                return None;
            }
            let examples: Vec<(BTreeSet<String>, bool)> = indices
                .iter()
                .map(|&i| (tokenized[i].1.clone(), tokenized[i].2.contains(&t)))
                .collect();
            Some(DecisionTree::train(&examples, config))
        };

        let mut domain_models: BTreeMap<String, BTreeMap<PiiType, DecisionTree>> = BTreeMap::new();
        for (domain, indices) in &by_domain {
            if indices.len() < MIN_DOMAIN_FLOWS {
                continue;
            }
            let mut per_type = BTreeMap::new();
            for t in PiiType::ALL {
                if let Some(tree) = train_set(indices, t) {
                    per_type.insert(t, tree);
                }
            }
            if !per_type.is_empty() {
                domain_models.insert(domain.clone(), per_type);
            }
        }

        let all: Vec<usize> = (0..tokenized.len()).collect();
        let mut general = BTreeMap::new();
        for t in PiiType::ALL {
            if let Some(tree) = train_set(&all, t) {
                general.insert(t, tree);
            }
        }

        ReconClassifier {
            domain_models,
            general,
        }
    }
}

/// The trained ensemble: per-domain trees with a general fallback.
#[derive(Clone, Debug, Default)]
pub struct ReconClassifier {
    domain_models: BTreeMap<String, BTreeMap<PiiType, DecisionTree>>,
    general: BTreeMap<PiiType, DecisionTree>,
}

impl ReconClassifier {
    /// Predict which PII types a flow to `domain` carries.
    pub fn predict(&self, domain: &str, text: &str) -> Vec<PiiType> {
        let tokens: BTreeSet<String> = token_set(text).into_iter().collect();
        let mut out: Vec<PiiType> = Vec::new();
        match self.domain_models.get(domain) {
            Some(models) => {
                for (t, tree) in models {
                    if tree.predict(&tokens) {
                        out.push(*t);
                    }
                }
                // Types the domain model never learned fall back to the
                // general model.
                for (t, tree) in &self.general {
                    if !models.contains_key(t) && tree.predict(&tokens) {
                        out.push(*t);
                    }
                }
            }
            None => {
                for (t, tree) in &self.general {
                    if tree.predict(&tokens) {
                        out.push(*t);
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Heuristic value extraction for a predicted type: the value of the
    /// first k/v pair whose key hints at `t`.
    pub fn extract_value(&self, t: PiiType, text: &str) -> Option<String> {
        extract_kv(text)
            .into_iter()
            .find(|(k, _)| t.key_hints().iter().any(|h| k == h || k.contains(h)))
            .map(|(_, v)| v)
    }

    /// Number of domains with dedicated models.
    pub fn domain_model_count(&self) -> usize {
        self.domain_models.len()
    }

    /// Whether a general model exists for `t`.
    pub fn has_general_model(&self, t: PiiType) -> bool {
        self.general.contains_key(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tree_learns_single_feature() {
        // Label = presence of "email".
        let ex: Vec<(BTreeSet<String>, bool)> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    (ts(&["get", "email", "track"]), true)
                } else {
                    (ts(&["get", "page", "track"]), false)
                }
            })
            .collect();
        let tree = DecisionTree::train(&ex, &TreeConfig::default());
        assert!(tree.predict(&ts(&["post", "email"])));
        assert!(!tree.predict(&ts(&["post", "page"])));
        assert!(tree.depth() >= 1);
        assert_eq!(tree.trained_on, 20);
    }

    #[test]
    fn tree_learns_conjunction() {
        // Positive only when both "lat" and "lon" are present.
        let mut ex = Vec::new();
        for _ in 0..10 {
            ex.push((ts(&["lat", "lon", "v2"]), true));
            ex.push((ts(&["lat", "v2"]), false));
            ex.push((ts(&["lon", "v2"]), false));
            ex.push((ts(&["v2"]), false));
        }
        let tree = DecisionTree::train(&ex, &TreeConfig::default());
        assert!(tree.predict(&ts(&["lat", "lon"])));
        assert!(!tree.predict(&ts(&["lat"])));
        assert!(!tree.predict(&ts(&["lon"])));
    }

    #[test]
    fn pure_node_stops_growing() {
        let ex = vec![(ts(&["a"]), true), (ts(&["b"]), true)];
        let tree = DecisionTree::train(&ex, &TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert!(tree.predict(&ts(&["anything"])));
    }

    #[test]
    fn depth_limit_is_respected() {
        // Parity-ish labels force deep trees; cap must hold.
        let mut ex = Vec::new();
        for i in 0..64u32 {
            let toks: Vec<String> = (0..6)
                .filter(|b| i >> b & 1 == 1)
                .map(|b| format!("f{b}"))
                .collect();
            let set: BTreeSet<String> = toks.into_iter().collect();
            ex.push((set, i.count_ones() % 2 == 0));
        }
        let cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::train(&ex, &cfg);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn feature_cap_keeps_the_informative_token() {
        // 600 noise tokens + one perfectly predictive token: with a tiny
        // feature cap the tree must still find the signal.
        let mut ex: Vec<(BTreeSet<String>, bool)> = Vec::new();
        for i in 0..40 {
            let mut set = ts(&["get", "http"]);
            for j in 0..15 {
                set.insert(format!("noise-{}-{}", i, j));
            }
            let positive = i % 2 == 0;
            if positive {
                set.insert("email".into());
            }
            ex.push((set, positive));
        }
        let cfg = TreeConfig {
            max_features: 8,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::train(&ex, &cfg);
        assert!(tree.predict(&ts(&["email"])));
        assert!(!tree.predict(&ts(&["noise-3-1"])));
    }

    #[test]
    fn no_cap_matches_capped_on_small_vocab() {
        let ex: Vec<(BTreeSet<String>, bool)> = (0..20)
            .map(|i| {
                (
                    if i % 2 == 0 {
                        ts(&["lat", "v"])
                    } else {
                        ts(&["v"])
                    },
                    i % 2 == 0,
                )
            })
            .collect();
        let capped = DecisionTree::train(
            &ex,
            &TreeConfig {
                max_features: 4,
                ..Default::default()
            },
        );
        let uncapped = DecisionTree::train(
            &ex,
            &TreeConfig {
                max_features: 0,
                ..Default::default()
            },
        );
        for probe in [ts(&["lat"]), ts(&["v"]), ts(&["other"])] {
            assert_eq!(capped.predict(&probe), uncapped.predict(&probe));
        }
    }

    #[test]
    fn ensemble_prefers_domain_model() {
        let mut trainer = ReconTrainer::new();
        // Domain A uses an idiosyncratic key "zx" for coordinates.
        for i in 0..12 {
            let has = i % 2 == 0;
            trainer.add(TrainingFlow {
                domain: "tracker-a.com".into(),
                text: if has {
                    format!("zx=42.3{i}&v=1")
                } else {
                    format!("v=1&page={i}")
                },
                labels: if has {
                    [PiiType::Location].into_iter().collect()
                } else {
                    BTreeSet::new()
                },
            });
        }
        // General corpus: "email" token means Email.
        for i in 0..12 {
            let has = i % 2 == 0;
            trainer.add(TrainingFlow {
                domain: format!("misc-{i}.com"),
                text: if has {
                    "email=x@y.com".into()
                } else {
                    "q=news".into()
                },
                labels: if has {
                    [PiiType::Email].into_iter().collect()
                } else {
                    BTreeSet::new()
                },
            });
        }
        let clf = trainer.train(&TreeConfig::default());
        assert!(clf.domain_model_count() >= 1);
        assert_eq!(
            clf.predict("tracker-a.com", "zx=47.61&v=9"),
            vec![PiiType::Location]
        );
        // Unknown domain falls back to the general model.
        assert_eq!(
            clf.predict("never-seen.com", "email=someone@else.org"),
            vec![PiiType::Email]
        );
        assert!(clf.has_general_model(PiiType::Email));
    }

    #[test]
    fn domain_model_falls_back_per_type() {
        let mut trainer = ReconTrainer::new();
        for i in 0..12 {
            let has = i % 2 == 0;
            trainer.add(TrainingFlow {
                domain: "geo.com".into(),
                text: if has {
                    format!("lat=1.{i}&lon=2.{i}")
                } else {
                    format!("ping={i}")
                },
                labels: if has {
                    [PiiType::Location].into_iter().collect()
                } else {
                    BTreeSet::new()
                },
            });
        }
        for i in 0..12 {
            let has = i % 2 == 0;
            trainer.add(TrainingFlow {
                domain: format!("m{i}.com"),
                text: if has {
                    "email=x@y.com".into()
                } else {
                    "q=1".into()
                },
                labels: if has {
                    [PiiType::Email].into_iter().collect()
                } else {
                    BTreeSet::new()
                },
            });
        }
        let clf = trainer.train(&TreeConfig::default());
        // A flow to geo.com carrying an email key: the domain model has no
        // Email tree, the general one catches it.
        let types = clf.predict("geo.com", "email=x@y.com&lat=1.5&lon=2.5");
        assert!(types.contains(&PiiType::Email));
        assert!(types.contains(&PiiType::Location));
    }

    #[test]
    fn value_extraction_by_key_hint() {
        let clf = ReconClassifier::default();
        assert_eq!(
            clf.extract_value(PiiType::Email, "a=1&email=jane@x.com"),
            Some("jane@x.com".into())
        );
        assert_eq!(clf.extract_value(PiiType::Password, "a=1"), None);
    }

    #[test]
    fn empty_trainer_yields_inert_classifier() {
        let clf = ReconTrainer::new().train(&TreeConfig::default());
        assert!(clf.predict("x.com", "email=a@b.com").is_empty());
        assert_eq!(clf.domain_model_count(), 0);
    }
}

appvsweb_json::impl_json!(struct TreeConfig { max_depth, min_samples_split, min_gain, max_features });
appvsweb_json::impl_json!(struct DecisionTree { root, trained_on });
appvsweb_json::impl_json!(struct ReconClassifier { domain_models, general });

// Node has a payload variant, so its JSON impls are written by hand in
// serde's externally-tagged shape: `{"Leaf": p}` / `{"Split": {...}}`.
// lint:allow(R2) impl_json! has no payload-enum form; shape reviewed against convert.rs
impl appvsweb_json::ToJson for Node {
    fn to_json(&self) -> appvsweb_json::Json {
        use appvsweb_json::Json;
        match self {
            Node::Leaf(p) => Json::Obj(vec![("Leaf".to_string(), p.to_json())]),
            Node::Split {
                token,
                present,
                absent,
            } => Json::Obj(vec![(
                "Split".to_string(),
                Json::Obj(vec![
                    ("token".to_string(), token.to_json()),
                    ("present".to_string(), present.to_json()),
                    ("absent".to_string(), absent.to_json()),
                ]),
            )]),
        }
    }
}

// lint:allow(R2) impl_json! has no payload-enum form; shape reviewed against convert.rs
impl appvsweb_json::FromJson for Node {
    fn from_json(v: &appvsweb_json::Json) -> Result<Self, appvsweb_json::JsonError> {
        use appvsweb_json::{Json, JsonError};
        if let Json::Obj(entries) = v {
            if let [(key, payload)] = entries.as_slice() {
                match key.as_str() {
                    "Leaf" => {
                        return Ok(Node::Leaf(appvsweb_json::FromJson::from_json(payload)?));
                    }
                    "Split" => {
                        return Ok(Node::Split {
                            token: payload.field("token")?,
                            present: payload.field("present")?,
                            absent: payload.field("absent")?,
                        });
                    }
                    _ => {}
                }
            }
        }
        Err(JsonError::schema(format!(
            "expected Node, got {}",
            v.kind()
        )))
    }
}
