//! MD5, SHA-1 and SHA-256, implemented from scratch.
//!
//! Trackers routinely transmit *hashed* identifiers (hashed e-mail for
//! cross-device matching, hashed MAC/IMEI for "privacy-preserving"
//! device IDs). Because the study controls the ground truth, it can
//! detect these by hashing the known values and string-matching the
//! digests — which is exactly what [`crate::matcher`] does with these
//! functions. None of this is used for security; the implementations
//! favour clarity over speed.

/// MD5 digest (16 bytes) of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    // Per-round shift amounts.
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
        5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    // K[i] = floor(2^32 * abs(sin(i+1))), precomputed.
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    let msg = pad_le(data);
    let (mut a0, mut b0, mut c0, mut d0) = (
        0x6745_2301u32,
        0xefcd_ab89u32,
        0x98ba_dcfeu32,
        0x1032_5476u32,
    );

    for block in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (w, bytes) in m.iter_mut().zip(block.chunks_exact(4)) {
            let &[b0, b1, b2, b3] = bytes else { continue };
            *w = u32::from_le_bytes([b0, b1, b2, b3]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let f = f.wrapping_add(a).wrapping_add(K[i]).wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f.rotate_left(S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// SHA-1 digest (20 bytes) of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let msg = pad_be(data);
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (wi, bytes) in w.iter_mut().zip(block.chunks_exact(4)) {
            let &[b0, b1, b2, b3] = bytes else { continue };
            *wi = u32::from_be_bytes([b0, b1, b2, b3]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6u32),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        for (hi, ai) in h.iter_mut().zip([a, b, c, d, e]) {
            *hi = hi.wrapping_add(ai);
        }
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 digest (32 bytes) of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    let msg = pad_be(data);
    let mut h: [u32; 8] = [
        0x6a09_e667,
        0xbb67_ae85,
        0x3c6e_f372,
        0xa54f_f53a,
        0x510e_527f,
        0x9b05_688c,
        0x1f83_d9ab,
        0x5be0_cd19,
    ];

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (wi, bytes) in w.iter_mut().zip(block.chunks_exact(4)) {
            let &[b0, b1, b2, b3] = bytes else { continue };
            *wi = u32::from_be_bytes([b0, b1, b2, b3]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, hh];
        for (hi, ai) in h.iter_mut().zip(add) {
            *hi = hi.wrapping_add(ai);
        }
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Merkle–Damgård padding with a little-endian length (MD5).
fn pad_le(data: &[u8]) -> Vec<u8> {
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());
    msg
}

/// Merkle–Damgård padding with a big-endian length (SHA family).
fn pad_be(data: &[u8]) -> Vec<u8> {
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    msg
}

/// Lowercase-hex MD5, the form trackers actually transmit.
pub fn md5_hex(data: &[u8]) -> String {
    to_hex(&md5(data))
}

/// Lowercase-hex SHA-1.
pub fn sha1_hex(data: &[u8]) -> String {
    to_hex(&sha1(data))
}

/// Lowercase-hex SHA-256.
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 test vectors.
    #[test]
    fn md5_rfc1321_vectors() {
        assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            md5_hex(b"message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            md5_hex(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
    }

    // FIPS 180 test vectors.
    #[test]
    fn sha1_fips_vectors() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha256_fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn multi_block_inputs() {
        // Exercise the >1 block path (length > 64 bytes).
        let long = vec![b'x'; 200];
        assert_eq!(md5(&long).len(), 16);
        assert_eq!(sha1(&long).len(), 20);
        assert_eq!(sha256(&long).len(), 32);
        // Boundary: exactly 55, 56, 64 bytes (padding edge cases).
        for n in [55, 56, 63, 64, 65] {
            let data = vec![b'a'; n];
            // Sanity: stable across calls.
            assert_eq!(md5(&data), md5(&data));
            assert_eq!(sha256(&data), sha256(&data));
        }
    }

    #[test]
    fn known_email_hash() {
        // A canonical cross-check value (md5 of a lowercase email is the
        // Gravatar convention trackers copied).
        assert_eq!(md5_hex(b"jane.conner.test@example.com").len(), 32);
        assert_ne!(md5_hex(b"a@b.com"), md5_hex(b"a@b.org"));
    }
}
