//! Process-wide compiled-dictionary cache.
//!
//! Compiling a [`GroundTruthMatcher`] builds two Aho–Corasick automata
//! (~5 ms on the reference box), and a study touches each of its 98
//! distinct `(service, OS)` ground truths twice per worker shuffle. The
//! cache keys the compiled dictionary on the *content* of the
//! [`GroundTruth`] (its canonical JSON form), so every cell that shares
//! an identity shares one compilation. Correctness is unaffected:
//! compilation is a pure function of the truth, and the canonical-JSON
//! key means two equal truths can never disagree.
//!
//! The cache is bounded: past [`CACHE_CAPACITY`] entries it is cleared
//! wholesale (the resident `repro serve` path churns through arbitrary
//! revisions and must not grow without bound). Build/hit counters are
//! exposed through [`stats`] so tests can pin "one build per study".

use crate::encode::search_chains;
use crate::matcher::GroundTruthMatcher;
use crate::profile::GroundTruth;
use crate::types::PiiType;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entries retained before the cache is cleared wholesale.
pub const CACHE_CAPACITY: usize = 512;

/// A ground-truth dictionary compiled once and shared by every pipeline
/// stage that searches for the same identity.
#[derive(Debug)]
pub struct CompiledDictionary {
    /// The Aho–Corasick-backed matcher (detection step 2).
    pub matcher: GroundTruthMatcher,
    /// Lowercased encoded variants of every value, used by the
    /// verification step (detection step 3).
    pub variants: Vec<(PiiType, String)>,
}

impl CompiledDictionary {
    /// Compile `truth` without consulting the cache.
    // lint:allow(T1) dictionary construction: encodes ground truth to SEARCH for it; nothing leaves the process
    pub fn build(truth: &GroundTruth) -> Self {
        let chains = search_chains();
        let mut variants = Vec::new();
        for (t, v) in truth.values() {
            for chain in &chains {
                variants.push((t, chain.apply(&v).to_ascii_lowercase()));
            }
        }
        CompiledDictionary {
            matcher: GroundTruthMatcher::new(truth),
            variants,
        }
    }
}

/// Build/hit counters for the process-wide cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dictionaries compiled from scratch.
    pub builds: u64,
    /// Lookups served from an already-compiled dictionary.
    pub hits: u64,
}

static BUILDS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<String, Arc<CompiledDictionary>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<CompiledDictionary>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetch (or compile and memoize) the dictionary for `truth`.
// lint:allow(T1) cache keying: the canonical JSON of the truth stays in-process as a map key; nothing leaves
pub fn compiled(truth: &GroundTruth) -> Arc<CompiledDictionary> {
    let key = appvsweb_json::encode(truth);
    {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is still coherent (inserts are single calls).
        let map = cache().lock().unwrap_or_else(|p| p.into_inner());
        if let Some(dict) = map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(dict);
        }
    }
    // Compile outside the lock: a study's workers race to warm the same
    // 98 identities, and holding the lock across a multi-ms build would
    // serialize them. A lost race costs one redundant build.
    let dict = Arc::new(CompiledDictionary::build(truth));
    BUILDS.fetch_add(1, Ordering::Relaxed);
    let mut map = cache().lock().unwrap_or_else(|p| p.into_inner());
    if map.len() >= CACHE_CAPACITY {
        appvsweb_cover::cover!();
        map.clear();
    }
    Arc::clone(map.entry(key).or_insert(dict))
}

/// Current build/hit counters.
pub fn stats() -> CacheStats {
    CacheStats {
        builds: BUILDS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_truth_compiles_once() {
        let truth = GroundTruth::synthetic(0xCAC4E).with_device(
            "Nexus 5",
            &[("imei", "354436069633711")],
            Some((42.361145, -71.057083)),
        );
        let before = stats();
        let a = compiled(&truth);
        let b = compiled(&truth.clone());
        let after = stats();
        assert!(
            Arc::ptr_eq(&a, &b),
            "equal truths must share one dictionary"
        );
        assert_eq!(after.builds - before.builds, 1);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn distinct_truths_get_distinct_dictionaries() {
        let a = compiled(&GroundTruth::synthetic(1));
        let b = compiled(&GroundTruth::synthetic(2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(
            a.matcher.candidate_count(),
            0,
            "compiled dictionary must be populated"
        );
        assert_ne!(b.variants.len(), 0);
    }

    #[test]
    fn cached_dictionary_equals_fresh_build() {
        let truth = GroundTruth::synthetic(77).with_device(
            "iPhone 5",
            &[("idfa", "AAAABBBB-CCCC-DDDD-EEEE-FFFF00001111")],
            Some((42.35, -71.06)),
        );
        let cached = compiled(&truth);
        let fresh = CompiledDictionary::build(&truth);
        assert_eq!(cached.variants, fresh.variants);
        assert_eq!(
            cached.matcher.candidate_count(),
            fresh.matcher.candidate_count()
        );
        // Same scan behaviour on a representative flow.
        let flow = format!("GET /t?email={}&ll=42.35,-71.06 HTTP/1.1", truth.email);
        assert_eq!(cached.matcher.scan(&flow), fresh.matcher.scan(&flow));
    }
}
