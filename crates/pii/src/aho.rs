//! Aho–Corasick multi-pattern string search.
//!
//! The ground-truth matcher searches every flow for several hundred
//! candidate strings (every encoding of every PII value). Scanning each
//! candidate independently is O(patterns × text); this automaton finds
//! all matches in a single pass over the text — the same reason
//! production interception pipelines (and ReCon's flow scanner) compile
//! their dictionaries into automata.
//!
//! The implementation is the classic goto/fail construction over bytes
//! with breadth-first failure-link computation and output merging.
//! Each transition word carries an "output here" flag in its high bit,
//! so the scan loop touches no output storage on the (overwhelmingly
//! common) non-matching byte.

/// High bit of a transition word: the target state has ≥1 output.
const OUT_FLAG: u32 = 1 << 31;
/// Mask recovering the state id from a transition word.
const STATE_MASK: u32 = OUT_FLAG - 1;

/// A compiled multi-pattern automaton.
#[derive(Clone, Debug)]
pub struct AhoCorasick {
    /// goto function: `next[state][byte]` (dense; states are few
    /// hundred for our dictionaries, so a dense table is the right
    /// trade-off). High bit = [`OUT_FLAG`].
    next: Vec<[u32; 256]>,
    /// Pattern ids terminating at each state (after output merging).
    outputs: Vec<Vec<u32>>,
    /// Number of patterns the automaton was built from.
    pattern_count: usize,
}

/// One match: which pattern, ending where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern in the input slice.
    pub pattern: u32,
    /// Byte offset one past the end of the match in the haystack.
    pub end: usize,
}

impl AhoCorasick {
    /// Build an automaton over `patterns`. Empty patterns are permitted
    /// but never match. Matching is byte-exact; callers wanting
    /// case-insensitivity normalize both sides beforehand.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        // Trie construction.
        let mut next: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, pat) in patterns.iter().enumerate() {
            let bytes = pat.as_ref();
            if bytes.is_empty() {
                continue;
            }
            let mut state = 0usize;
            for &b in bytes {
                let slot = next[state][b as usize];
                state = if slot == u32::MAX {
                    next.push([u32::MAX; 256]);
                    outputs.push(Vec::new());
                    let new_state = (next.len() - 1) as u32;
                    next[state][b as usize] = new_state;
                    new_state as usize
                } else {
                    slot as usize
                };
            }
            outputs[state].push(id as u32);
        }

        // Failure links via BFS, then convert to a full DFA by patching
        // missing transitions (next[s][b] = next[fail(s)][b]).
        // Indexing two tables by the same byte is the clearest spelling.
        let mut fail = vec![0u32; next.len()];
        let mut queue = std::collections::VecDeque::new();
        if let Some(root) = next.first_mut() {
            #[allow(clippy::needless_range_loop)]
            for b in 0..256 {
                let s = root[b];
                if s == u32::MAX {
                    root[b] = 0;
                } else {
                    fail[s as usize] = 0;
                    queue.push_back(s as usize);
                }
            }
        }
        while let Some(state) = queue.pop_front() {
            #[allow(clippy::needless_range_loop)]
            for b in 0..256 {
                let child = next[state][b];
                let fallback = next[fail[state] as usize][b];
                if child == u32::MAX {
                    next[state][b] = fallback;
                } else {
                    fail[child as usize] = fallback;
                    // Merge outputs from the failure target.
                    let inherited = outputs[fallback as usize].clone();
                    outputs[child as usize].extend(inherited);
                    queue.push_back(child as usize);
                }
            }
        }

        // Pack the "target has outputs" flag into every transition so
        // the walk needs no second load to decide whether to collect.
        // lint:allow(R1) dictionary automata are bounded (hundreds of states), nowhere near 2^31
        assert!(next.len() < STATE_MASK as usize, "automaton too large");
        for row in &mut next {
            for slot in row.iter_mut() {
                if !outputs[*slot as usize].is_empty() {
                    *slot |= OUT_FLAG;
                }
            }
        }

        AhoCorasick {
            next,
            outputs,
            pattern_count: patterns.len(),
        }
    }

    /// Start a resumable walk at the root. Several walkers can be
    /// advanced over the same bytes in one pass (the ground-truth
    /// matcher drives its case-insensitive and byte-exact automata
    /// together instead of re-reading the flow).
    pub fn walker(&self) -> Walker<'_> {
        Walker {
            auto: self,
            state: 0,
        }
    }

    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Number of automaton states (diagnostics).
    pub fn state_count(&self) -> usize {
        self.next.len()
    }

    /// Find all matches in `haystack` (overlapping included).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut walk = self.walker();
        for (i, &b) in haystack.iter().enumerate() {
            for &pat in walk.step(b) {
                out.push(Match {
                    pattern: pat,
                    end: i + 1,
                });
            }
        }
        out
    }

    /// Which patterns occur in `haystack` (deduplicated, sorted)?
    /// This is the matcher's hot call: it bails on output collection
    /// overhead and just flags pattern presence.
    pub fn present(&self, haystack: &[u8]) -> Vec<u32> {
        let mut seen = vec![false; self.pattern_count];
        let mut walk = self.walker();
        for &b in haystack {
            for &pat in walk.step(b) {
                seen[pat as usize] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// A resumable automaton walk: one [`Walker::step`] per haystack byte.
#[derive(Clone, Copy, Debug)]
pub struct Walker<'a> {
    auto: &'a AhoCorasick,
    state: u32,
}

impl<'a> Walker<'a> {
    /// Advance by one byte; returns the pattern ids of matches ending
    /// at this byte (empty for the common non-matching byte, at the
    /// cost of exactly one table load).
    #[inline]
    pub fn step(&mut self, b: u8) -> &'a [u32] {
        let word = self.auto.next[self.state as usize][b as usize];
        self.state = word & STATE_MASK;
        if word & OUT_FLAG == 0 {
            &[]
        } else {
            &self.auto.outputs[self.state as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_patterns() {
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"]);
        let matches = ac.find_all(b"ushers");
        let pats: Vec<u32> = matches.iter().map(|m| m.pattern).collect();
        // "she" at 1..4, "he" at 2..4, "hers" at 2..6.
        assert!(pats.contains(&0));
        assert!(pats.contains(&1));
        assert!(pats.contains(&3));
        assert!(!pats.contains(&2));
    }

    #[test]
    fn overlapping_and_nested_matches() {
        let ac = AhoCorasick::new(&["aa", "aaa"]);
        let matches = ac.find_all(b"aaaa");
        let count_aa = matches.iter().filter(|m| m.pattern == 0).count();
        let count_aaa = matches.iter().filter(|m| m.pattern == 1).count();
        assert_eq!(count_aa, 3);
        assert_eq!(count_aaa, 2);
    }

    #[test]
    fn present_dedups() {
        let ac = AhoCorasick::new(&["ab", "bc", "zz"]);
        assert_eq!(ac.present(b"ababab bc"), vec![0, 1]);
        assert!(ac.present(b"xyxyx").is_empty());
    }

    #[test]
    fn empty_patterns_never_match() {
        let ac = AhoCorasick::new(&["", "x"]);
        assert_eq!(ac.present(b"yyy"), Vec::<u32>::new());
        assert_eq!(ac.present(b"x"), vec![1]);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&[0xFFu8, 0x00][..], &[0x00, 0x00][..]]);
        let hits = ac.present(&[0xAB, 0xFF, 0x00, 0x00, 0xCD]);
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn agrees_with_naive_contains() {
        let patterns = ["email", "42.36", "9d2a1f6c", "lat", "a", "match-me"];
        let ac = AhoCorasick::new(&patterns);
        let texts = [
            "GET /t?email=a@b.com&lat=42.361 HTTP/1.1",
            "nothing relevant here",
            "match-memail42.36",
            "",
        ];
        for text in texts {
            let expected: Vec<u32> = patterns
                .iter()
                .enumerate()
                .filter(|(_, p)| text.contains(*p))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(ac.present(text.as_bytes()), expected, "text {text:?}");
        }
    }

    #[test]
    fn suffix_pattern_inherited_through_failure_links() {
        // "bcd" is a suffix of paths reached while matching "abcde".
        let ac = AhoCorasick::new(&["abcde", "bcd"]);
        let hits = ac.present(b"zabcdez");
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn scales_to_dictionary_size() {
        let patterns: Vec<String> = (0..500).map(|i| format!("pattern-{i:03}-value")).collect();
        let ac = AhoCorasick::new(&patterns);
        assert_eq!(ac.pattern_count(), 500);
        let text = format!("xx {} yy {} zz", patterns[42], patterns[499]);
        assert_eq!(ac.present(text.as_bytes()), vec![42, 499]);
    }
}
