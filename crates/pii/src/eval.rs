//! Detector accuracy evaluation.
//!
//! The paper leans on ReCon's reported accuracy and its own manual
//! verification; a reproduction should be able to *measure* its detector
//! instead of asserting it. This module builds a labelled synthetic
//! corpus — flows with known PII planted under known encodings, mixed
//! with PII-free flows and decoy flows carrying someone *else's* PII —
//! and scores any detection function with precision/recall per PII type
//! and per encoding.

use crate::encode::{search_chains, EncodingChain};
use crate::profile::GroundTruth;
use crate::types::PiiType;
use std::collections::BTreeMap;

/// One labelled corpus flow.
#[derive(Clone, Debug)]
pub struct LabelledFlow {
    /// The flow text.
    pub text: String,
    /// The PII types actually planted (empty = clean flow).
    pub truth: Vec<PiiType>,
    /// The encoding chain used to plant them (label for reporting).
    pub encoding: String,
}

/// Precision/recall counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Planted and detected.
    pub true_positives: u64,
    /// Detected but not planted.
    pub false_positives: u64,
    /// Planted but missed.
    pub false_negatives: u64,
}

impl Counts {
    /// Precision (1 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1 when nothing was planted).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluation results.
#[derive(Clone, Debug, Default)]
pub struct Evaluation {
    /// Overall counters.
    pub overall: Counts,
    /// Per PII type.
    pub per_type: BTreeMap<PiiType, Counts>,
    /// Per encoding chain label.
    pub per_encoding: BTreeMap<String, Counts>,
    /// Number of corpus flows scored.
    pub flows: usize,
}

/// Build a labelled corpus for `truth`. For every (plantable type,
/// encoding chain) pair the corpus contains one positive flow; plus
/// `clean_flows` PII-free flows and one decoy flow per type carrying a
/// different identity's values (which a correct detector must NOT flag).
// lint:allow(T1) corpus synthesis deliberately embeds encoded PII in labelled eval flows; no transport involved
pub fn build_corpus(truth: &GroundTruth, clean_flows: usize) -> Vec<LabelledFlow> {
    let mut corpus = Vec::new();
    let decoy = GroundTruth::synthetic(0xDEC0).with_device(
        "Nexus 5",
        &[
            ("imei", "490154203237518"),
            ("ad_id", "ffffeeee-dddd-cccc-bbbb-aaaa99998888"),
        ],
        Some((47.6097, -122.3331)),
    );

    let plant = |t: PiiType, source: &GroundTruth| -> Option<(String, String)> {
        let (key, value) = match t {
            PiiType::Email => ("email", source.email.clone()),
            PiiType::Location => {
                let (lat, _) = source.gps_at_precision(4)?;
                ("lat", lat)
            }
            PiiType::Name => ("firstname", source.first_name.clone()),
            PiiType::PhoneNumber => ("phone", source.phone.clone()),
            PiiType::Username => ("username", source.username.clone()),
            PiiType::Password => ("password", source.password.clone()),
            PiiType::Birthday => ("dob", source.birthday.clone()),
            PiiType::Gender => ("gender", source.gender.clone()),
            PiiType::DeviceInfo => ("device_model", source.device_model.clone()),
            PiiType::UniqueId => {
                let (_, v) = source.device_ids.first()?;
                ("device_id", v.clone())
            }
        };
        Some((key.to_string(), value))
    };

    // Positives: every type under every chain. Hash/encoding chains are
    // skipped for numeric coordinates (nobody hashes a latitude) and for
    // single-character values, mirroring the matcher's design envelope.
    for chain in search_chains() {
        for t in PiiType::ALL {
            let Some((key, value)) = plant(t, truth) else {
                continue;
            };
            if value.len() <= 2 && chain.label() != "plain" {
                continue;
            }
            if t == PiiType::Location
                && !matches!(
                    chain.label().as_str(),
                    "plain" | "percent" | "formpercent" | "lowercase" | "uppercase"
                )
            {
                // Coordinates travel as text at varying precision; the
                // matcher (like the paper's) does not search digest or
                // binary transforms of a single float.
                continue;
            }
            let encoded = chain.apply(&value);
            corpus.push(LabelledFlow {
                text: format!(
                    "POST /v1/collect HTTP/1.1\nHost: sink.example\n\nsdk=eval&{key}={encoded}&seq=1"
                ),
                truth: vec![t],
                encoding: chain.label(),
            });
        }
    }

    // Clean flows.
    for i in 0..clean_flows {
        corpus.push(LabelledFlow {
            text: format!(
                "GET /content/{i}?page={}&session=s{:08x} HTTP/1.1\nHost: api.example",
                i % 7,
                (i as u64).wrapping_mul(0x9e3779b97f4a7c15)
            ),
            truth: vec![],
            encoding: "none".into(),
        });
    }

    // Decoys: somebody else's PII under the same keys.
    for t in PiiType::ALL {
        // Gender/device-model decoys are indistinguishable from the real
        // user's values half the time (a one-letter flag and a shared
        // hardware model are not unique identifiers), so skip them.
        if matches!(t, PiiType::Gender | PiiType::DeviceInfo) {
            continue;
        }
        if let Some((key, value)) = plant(t, &decoy) {
            corpus.push(LabelledFlow {
                text: format!(
                    "POST /v1/collect HTTP/1.1\nHost: sink.example\n\nsdk=eval&{key}={value}"
                ),
                truth: vec![],
                encoding: "decoy".into(),
            });
        }
    }

    corpus
}

/// Score `detect` against a corpus. `detect` returns the PII types it
/// finds in a flow text.
pub fn evaluate<F>(corpus: &[LabelledFlow], mut detect: F) -> Evaluation
where
    F: FnMut(&str) -> Vec<PiiType>,
{
    let mut eval = Evaluation {
        flows: corpus.len(),
        ..Default::default()
    };
    for flow in corpus {
        let predicted = detect(&flow.text);
        for t in PiiType::ALL {
            let planted = flow.truth.contains(&t);
            let found = predicted.contains(&t);
            let (overall, per_type, per_enc) = (
                &mut eval.overall,
                eval.per_type.entry(t).or_default(),
                eval.per_encoding.entry(flow.encoding.clone()).or_default(),
            );
            match (planted, found) {
                (true, true) => {
                    overall.true_positives += 1;
                    per_type.true_positives += 1;
                    per_enc.true_positives += 1;
                }
                (true, false) => {
                    overall.false_negatives += 1;
                    per_type.false_negatives += 1;
                    per_enc.false_negatives += 1;
                }
                (false, true) => {
                    overall.false_positives += 1;
                    per_type.false_positives += 1;
                    per_enc.false_positives += 1;
                }
                (false, false) => {}
            }
        }
    }
    eval
}

/// Which encoding chains the corpus builder plants (for reporting).
pub fn corpus_chains() -> Vec<EncodingChain> {
    search_chains()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::GroundTruthMatcher;

    fn truth() -> GroundTruth {
        GroundTruth::synthetic(77).with_device(
            "iPhone 5",
            &[("idfa", "12345678-ABCD-EF01-2345-6789ABCDEF01")],
            Some((42.35, -71.06)),
        )
    }

    #[test]
    fn corpus_has_positives_cleans_and_decoys() {
        let corpus = build_corpus(&truth(), 25);
        let positives = corpus.iter().filter(|f| !f.truth.is_empty()).count();
        let cleans = corpus.iter().filter(|f| f.encoding == "none").count();
        let decoys = corpus.iter().filter(|f| f.encoding == "decoy").count();
        assert!(positives > 100, "got {positives}");
        assert_eq!(cleans, 25);
        assert_eq!(decoys, 8);
    }

    #[test]
    fn matcher_scores_high_recall_and_precision() {
        let t = truth();
        let corpus = build_corpus(&t, 50);
        let matcher = GroundTruthMatcher::new(&t);
        let eval = evaluate(&corpus, |text| matcher.types_in(text));
        assert!(
            eval.overall.recall() >= 0.95,
            "matcher recall {:.3} (fn={})",
            eval.overall.recall(),
            eval.overall.false_negatives
        );
        assert!(
            eval.overall.precision() >= 0.95,
            "matcher precision {:.3} (fp={})",
            eval.overall.precision(),
            eval.overall.false_positives
        );
    }

    #[test]
    fn per_encoding_breakdown_covers_hashes() {
        let t = truth();
        let corpus = build_corpus(&t, 0);
        let matcher = GroundTruthMatcher::new(&t);
        let eval = evaluate(&corpus, |text| matcher.types_in(text));
        let md5 = eval
            .per_encoding
            .get("lowercase>md5")
            .expect("md5 chain present");
        assert_eq!(md5.false_negatives, 0, "hashed identifiers must be caught");
    }

    #[test]
    fn blind_detector_scores_zero_recall() {
        let corpus = build_corpus(&truth(), 10);
        let eval = evaluate(&corpus, |_| vec![]);
        assert_eq!(eval.overall.true_positives, 0);
        assert_eq!(eval.overall.recall(), 0.0);
        assert_eq!(
            eval.overall.precision(),
            1.0,
            "no predictions = vacuous precision"
        );
    }

    #[test]
    fn always_fire_detector_scores_low_precision() {
        let corpus = build_corpus(&truth(), 50);
        let eval = evaluate(&corpus, |_| PiiType::ALL.to_vec());
        assert_eq!(eval.overall.recall(), 1.0);
        assert!(eval.overall.precision() < 0.2);
        assert!(eval.overall.f1() < 0.4);
    }

    #[test]
    fn counts_math() {
        let c = Counts {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 2,
        };
        assert!((c.precision() - 0.8).abs() < 1e-9);
        assert!((c.recall() - 0.8).abs() < 1e-9);
        assert!((c.f1() - 0.8).abs() < 1e-9);
        assert_eq!(Counts::default().precision(), 1.0);
        assert_eq!(Counts::default().recall(), 1.0);
    }
}

appvsweb_json::impl_json!(struct Counts { true_positives, false_positives, false_negatives });
appvsweb_json::impl_json!(struct Evaluation { overall, per_type, per_encoding, flows });
