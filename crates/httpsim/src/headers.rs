//! Ordered, case-insensitive HTTP header map.
//!
//! Header insertion order is preserved because the PII detector tokenizes
//! whole messages; matching mitmproxy, we never reorder what a client sent.

use std::fmt;

/// An ordered multimap of HTTP headers with case-insensitive lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Create an empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header, preserving any existing values of the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Set a header, replacing all existing values of the same name.
    /// The new value takes the position of the first replaced entry, or is
    /// appended if the header was absent.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        let first = self
            .entries
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(&name));
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(&name));
        match first {
            Some(idx) => self
                .entries
                .insert(idx.min(self.entries.len()), (name, value)),
            None => self.entries.push((name, value)),
        }
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all values for `name`; returns whether anything was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.len() != before
    }

    /// Iterate all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header entries (counting duplicates).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in &self.entries {
            writeln!(f, "{n}: {v}")?;
        }
        Ok(())
    }
}

impl<N: Into<String>, V: Into<String>> FromIterator<(N, V)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        HeaderMap {
            entries: iter
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = HeaderMap::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("x-missing"));
    }

    #[test]
    fn append_preserves_duplicates_in_order() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("X-Other", "z");
        h.append("set-cookie", "b=2");
        let all: Vec<_> = h.get_all("Set-Cookie").collect();
        assert_eq!(all, vec!["a=1", "b=2"]);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn set_replaces_all() {
        let mut h = HeaderMap::new();
        h.append("Cookie", "a=1");
        h.append("Cookie", "b=2");
        h.set("cookie", "c=3");
        let all: Vec<_> = h.get_all("Cookie").collect();
        assert_eq!(all, vec!["c=3"]);
    }

    #[test]
    fn remove_reports_presence() {
        let mut h: HeaderMap = [("A", "1"), ("B", "2")].into_iter().collect();
        assert!(h.remove("a"));
        assert!(!h.remove("a"));
        assert_eq!(h.len(), 1);
    }
}

appvsweb_json::impl_json!(struct HeaderMap { entries });
