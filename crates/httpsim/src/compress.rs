//! DEFLATE (RFC 1951) and gzip (RFC 1952), from scratch.
//!
//! Mobile SDKs gzip their batch uploads and servers gzip responses; an
//! interception proxy must inflate them before any PII scanning can work
//! (mitmproxy does this transparently). This module provides:
//!
//! * [`deflate`] — a compressor using greedy LZ77 matching over a 32 KiB
//!   window with fixed-Huffman encoding
//! * [`inflate`] — a full decompressor: stored, fixed-Huffman, and
//!   dynamic-Huffman blocks
//! * [`gzip_compress`] / [`gzip_decompress`] — the gzip member framing
//!   with CRC-32 integrity checking
//!
//! Each codec also has an `_into` variant appending to a caller-owned
//! buffer, so the per-exchange hot path can target pooled wire buffers
//! ([`appvsweb_netsim::pool`]) with no intermediate allocations; the
//! LZ77 hash-chain table is itself a reused thread-local scratch.

/// Error from the decompressors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InflateError {
    /// Input ended mid-stream.
    Truncated,
    /// Invalid block type or malformed Huffman data.
    Corrupt(&'static str),
    /// gzip framing problems (magic, method, CRC).
    BadGzip(&'static str),
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InflateError::Truncated => f.write_str("truncated deflate stream"),
            InflateError::Corrupt(why) => write!(f, "corrupt deflate stream: {why}"),
            InflateError::BadGzip(why) => write!(f, "bad gzip framing: {why}"),
        }
    }
}

impl std::error::Error for InflateError {}

// ---------------------------------------------------------------- bits

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit: 0,
        }
    }

    fn take_bit(&mut self) -> Result<u32, InflateError> {
        let byte = *self.data.get(self.pos).ok_or(InflateError::Truncated)?;
        let out = (byte >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(out as u32)
    }

    fn take_bits(&mut self, n: u32) -> Result<u32, InflateError> {
        let mut out = 0u32;
        for i in 0..n {
            out |= self.take_bit()? << i;
        }
        Ok(out)
    }

    fn align_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.pos += 1;
        }
    }
}

/// Bit writer appending to a caller-owned buffer, so compression can
/// target a pooled buffer without an intermediate allocation.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    bit: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, bit: 0 }
    }

    fn put_bits(&mut self, value: u32, n: u32) {
        for i in 0..n {
            if self.bit == 0 {
                self.out.push(0);
            }
            let b = (value >> i) & 1;
            if let Some(last) = self.out.last_mut() {
                *last |= (b as u8) << self.bit;
            }
            self.bit = (self.bit + 1) % 8;
        }
    }

    /// Huffman codes are written most-significant bit first.
    fn put_huffman(&mut self, code: u32, len: u32) {
        for i in (0..len).rev() {
            self.put_bits((code >> i) & 1, 1);
        }
    }
}

// ------------------------------------------------------- huffman tables

/// Canonical Huffman decoder built from code lengths.
struct Huffman {
    /// (first_code, first_symbol_index) per bit length 1..=15.
    counts: [u16; 16],
    symbols: Vec<u16>,
}

impl Huffman {
    fn from_lengths(lengths: &[u8]) -> Result<Self, InflateError> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            counts[l as usize] += 1;
        }
        // lint:allow(R1) counts is a fixed [u16; 16]; index 0 is always in bounds
        counts[0] = 0;
        // Over-subscribed check (loop index is the code length itself).
        let mut left = 1i32;
        #[allow(clippy::needless_range_loop)]
        for len in 1..16 {
            left <<= 1;
            left -= counts[len] as i32;
            if left < 0 {
                return Err(InflateError::Corrupt("over-subscribed huffman code"));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, bits: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= bits.take_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - count < first {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first += count;
            first <<= 1;
            code <<= 1;
        }
        Err(InflateError::Corrupt("invalid huffman code"))
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn fixed_literal_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    for item in l.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in l.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    l
}

// ------------------------------------------------------------- inflate

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::with_capacity(data.len() * 3);
    inflate_into(data, &mut out)?;
    Ok(out)
}

/// Decompress a raw DEFLATE stream, appending to `out` (pooled-buffer
/// entry point). Atomic: on error, `out` is truncated back to its
/// original length so a corrupt stream never hands back half-written
/// output.
pub fn inflate_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), InflateError> {
    let base = out.len();
    let result = inflate_into_inner(data, out, base);
    if result.is_err() {
        out.truncate(base);
    }
    result
}

fn inflate_into_inner(data: &[u8], out: &mut Vec<u8>, base: usize) -> Result<(), InflateError> {
    let mut bits = BitReader::new(data);
    loop {
        let final_block = bits.take_bit()? == 1;
        let btype = bits.take_bits(2)?;
        match btype {
            0 => {
                // Stored.
                appvsweb_cover::cover!();
                bits.align_byte();
                if bits.pos + 4 > data.len() {
                    return Err(InflateError::Truncated);
                }
                let len = u16::from_le_bytes([data[bits.pos], data[bits.pos + 1]]) as usize;
                let nlen = u16::from_le_bytes([data[bits.pos + 2], data[bits.pos + 3]]);
                if nlen != !(len as u16) {
                    return Err(InflateError::Corrupt("stored-block length check"));
                }
                bits.pos += 4;
                if bits.pos + len > data.len() {
                    return Err(InflateError::Truncated);
                }
                out.extend_from_slice(&data[bits.pos..bits.pos + len]);
                bits.pos += len;
            }
            1 => {
                appvsweb_cover::cover!();
                let lit = Huffman::from_lengths(&fixed_literal_lengths())?;
                let dist = Huffman::from_lengths(&[5u8; 30])?;
                inflate_block(&mut bits, &lit, &dist, out, base)?;
            }
            2 => {
                appvsweb_cover::cover!();
                let (lit, dist) = read_dynamic_tables(&mut bits)?;
                inflate_block(&mut bits, &lit, &dist, out, base)?;
            }
            _ => return Err(InflateError::Corrupt("reserved block type")),
        }
        if final_block {
            return Ok(());
        }
    }
}

fn read_dynamic_tables(bits: &mut BitReader<'_>) -> Result<(Huffman, Huffman), InflateError> {
    const ORDER: [usize; 19] = [
        16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
    ];
    let hlit = bits.take_bits(5)? as usize + 257;
    let hdist = bits.take_bits(5)? as usize + 1;
    let hclen = bits.take_bits(4)? as usize + 4;
    let mut code_lengths = [0u8; 19];
    for &idx in ORDER.iter().take(hclen) {
        code_lengths[idx] = bits.take_bits(3)? as u8;
    }
    let cl_huff = Huffman::from_lengths(&code_lengths)?;

    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = cl_huff.decode(bits)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                appvsweb_cover::cover!();
                let prev = *lengths
                    .last()
                    .ok_or(InflateError::Corrupt("repeat at start"))?;
                let n = 3 + bits.take_bits(2)?;
                for _ in 0..n {
                    lengths.push(prev);
                }
            }
            17 => {
                appvsweb_cover::cover!();
                let n = 3 + bits.take_bits(3)? as usize;
                lengths.resize(lengths.len() + n, 0);
            }
            18 => {
                appvsweb_cover::cover!();
                let n = 11 + bits.take_bits(7)? as usize;
                lengths.resize(lengths.len() + n, 0);
            }
            _ => return Err(InflateError::Corrupt("bad code-length symbol")),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(InflateError::Corrupt("code-length overflow"));
    }
    let lit = Huffman::from_lengths(&lengths[..hlit])?;
    let dist = Huffman::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    bits: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
    base: usize,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(bits)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                appvsweb_cover::cover!();
                let idx = (sym - 257) as usize;
                let len =
                    LENGTH_BASE[idx] as usize + bits.take_bits(LENGTH_EXTRA[idx] as u32)? as usize;
                let dsym = dist.decode(bits)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::Corrupt("bad distance symbol"));
                }
                let distance =
                    DIST_BASE[dsym] as usize + bits.take_bits(DIST_EXTRA[dsym] as u32)? as usize;
                // Back-references may not reach past this stream's own
                // output into a pooled buffer's pre-existing bytes.
                if distance > out.len() - base {
                    return Err(InflateError::Corrupt("distance beyond output"));
                }
                let start = out.len() - distance;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::Corrupt("bad literal/length symbol")),
        }
    }
}

// ------------------------------------------------------------- deflate

thread_local! {
    /// Reused LZ77 hash-chain table (256 KiB); allocating it fresh per
    /// call dominated small-payload compression (one table per gzipped
    /// beacon). Reset with `fill(-1)` on each take.
    static HEAD_SCRATCH: std::cell::RefCell<Vec<i64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Compress with greedy LZ77 + fixed-Huffman coding.
pub fn deflate(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    deflate_into(data, &mut out);
    out
}

/// Compress with greedy LZ77 + fixed-Huffman coding, appending to `out`
/// (pooled-buffer entry point). The hash-chain scratch table is reused
/// from a thread-local, so repeated calls allocate nothing.
pub fn deflate_into(data: &[u8], out: &mut Vec<u8>) {
    let mut head = HEAD_SCRATCH.with(|h| std::mem::take(&mut *h.borrow_mut()));
    if head.len() != 1 << 15 {
        head = vec![-1i64; 1 << 15];
    } else {
        head.fill(-1);
    }
    deflate_with_scratch(data, out, &mut head);
    HEAD_SCRATCH.with(|h| *h.borrow_mut() = head);
}

fn deflate_with_scratch(data: &[u8], out: &mut Vec<u8>, head: &mut [i64]) {
    let mut w = BitWriter::new(out);
    // Single final block, fixed Huffman.
    w.put_bits(1, 1); // BFINAL
    w.put_bits(1, 2); // BTYPE = fixed

    let fixed_code = |sym: u16| -> (u32, u32) {
        match sym {
            0..=143 => (0x30 + sym as u32, 8),
            144..=255 => (0x190 + (sym as u32 - 144), 9),
            256..=279 => (sym as u32 - 256, 7),
            _ => (0xC0 + (sym as u32 - 280), 8),
        }
    };

    // 3-byte hash chains over a 32 KiB window.
    const WINDOW: usize = 32 * 1024;
    const MIN_MATCH: usize = 3;
    const MAX_MATCH: usize = 258;
    let hash = |a: u8, b: u8, c: u8| -> usize {
        ((a as usize) << 7 ^ (b as usize) << 3 ^ c as usize) & 0x7fff
    };

    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data[i], data[i + 1], data[i + 2]);
            let candidate = head[h];
            if candidate >= 0 {
                let cand = candidate as usize;
                let dist = i - cand;
                if dist <= WINDOW && dist > 0 {
                    let mut l = 0usize;
                    let max = MAX_MATCH.min(data.len() - i);
                    while l < max && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH {
                        best_len = l;
                        best_dist = dist;
                    }
                }
            }
            head[h] = i as i64;
        }

        if best_len >= MIN_MATCH {
            // Length code.
            // LENGTH_BASE[0] is MIN_MATCH, so the search can't come up
            // empty; 0 is the right code for that degenerate case anyway.
            let idx = LENGTH_BASE
                .iter()
                .rposition(|&b| b as usize <= best_len)
                .unwrap_or(0);
            let (code, bits_n) = fixed_code(257 + idx as u16);
            w.put_huffman(code, bits_n);
            w.put_bits(
                (best_len - LENGTH_BASE[idx] as usize) as u32,
                LENGTH_EXTRA[idx] as u32,
            );
            // Distance code (5-bit fixed).
            let didx = DIST_BASE
                .iter()
                .rposition(|&b| b as usize <= best_dist)
                .unwrap_or(0);
            w.put_huffman(didx as u32, 5);
            w.put_bits(
                (best_dist - DIST_BASE[didx] as usize) as u32,
                DIST_EXTRA[didx] as u32,
            );
            // Insert hash entries inside the match so later data can
            // reference it.
            let end = i + best_len;
            i += 1;
            while i < end && i + MIN_MATCH <= data.len() {
                let h = hash(data[i], data[i + 1], data[i + 2]);
                head[h] = i as i64;
                i += 1;
            }
            i = end;
        } else {
            let (code, bits_n) = fixed_code(data[i] as u16);
            w.put_huffman(code, bits_n);
            i += 1;
        }
    }
    let (eob, eob_bits) = fixed_code(256);
    w.put_huffman(eob, eob_bits);
}

// ---------------------------------------------------------------- gzip

/// CRC-32 (IEEE 802.3), byte-at-a-time with a once-built shared table.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, entry) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Wrap `data` as a gzip member.
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(18 + data.len() / 2);
    gzip_compress_into(data, &mut out);
    out
}

/// Wrap `data` as a gzip member, appending to `out` with no
/// intermediate deflate buffer (pooled-buffer entry point).
pub fn gzip_compress_into(data: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&[
        0x1f, 0x8b, // magic
        8,    // deflate
        0,    // flags
        0, 0, 0, 0,   // mtime (deterministic simulation: epoch)
        0,   // extra flags
        255, // OS: unknown
    ]);
    deflate_into(data, out);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
}

/// Unwrap and decompress a gzip member, verifying the CRC.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::with_capacity(data.len() * 3);
    gzip_decompress_into(data, &mut out)?;
    Ok(out)
}

/// Unwrap and decompress a gzip member into `out` (pooled-buffer entry
/// point), verifying the CRC over the appended bytes. On error, `out`
/// is restored to its original length.
pub fn gzip_decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), InflateError> {
    let base = out.len();
    let result = gzip_decompress_inner(data, out, base);
    if result.is_err() {
        out.truncate(base);
    }
    result
}

fn gzip_decompress_inner(data: &[u8], out: &mut Vec<u8>, base: usize) -> Result<(), InflateError> {
    if data.len() < 18 {
        return Err(InflateError::BadGzip("too short"));
    }
    let &[magic0, magic1, method, flags, ..] = data else {
        return Err(InflateError::BadGzip("too short"));
    };
    if magic0 != 0x1f || magic1 != 0x8b {
        return Err(InflateError::BadGzip("bad magic"));
    }
    if method != 8 {
        return Err(InflateError::BadGzip("unknown method"));
    }
    let mut offset = 10;
    if flags & 0x04 != 0 {
        // FEXTRA: two length bytes, then that many payload bytes.
        appvsweb_cover::cover!();
        let lo = *data.get(offset).ok_or(InflateError::Truncated)?;
        let hi = *data.get(offset + 1).ok_or(InflateError::Truncated)?;
        offset += 2 + u16::from_le_bytes([lo, hi]) as usize;
    }
    if flags & 0x08 != 0 {
        // FNAME: zero-terminated.
        appvsweb_cover::cover!();
        while *data.get(offset).ok_or(InflateError::Truncated)? != 0 {
            offset += 1;
        }
        offset += 1;
    }
    if flags & 0x10 != 0 {
        // FCOMMENT
        appvsweb_cover::cover!();
        while *data.get(offset).ok_or(InflateError::Truncated)? != 0 {
            offset += 1;
        }
        offset += 1;
    }
    if flags & 0x02 != 0 {
        offset += 2; // FHCRC
    }
    if offset + 8 > data.len() {
        return Err(InflateError::Truncated);
    }
    let body = &data[offset..data.len() - 8];
    inflate_into(body, out)?;
    let trailer = |range: std::ops::Range<usize>| -> Result<u32, InflateError> {
        let bytes = data.get(range).ok_or(InflateError::Truncated)?;
        Ok(u32::from_le_bytes(
            bytes.try_into().map_err(|_| InflateError::Truncated)?,
        ))
    };
    let expected_crc = trailer(data.len() - 8..data.len() - 4)?;
    let expected_size = trailer(data.len() - 4..data.len())?;
    if crc32(&out[base..]) != expected_crc {
        return Err(InflateError::BadGzip("crc mismatch"));
    }
    if (out.len() - base) as u32 != expected_size {
        return Err(InflateError::BadGzip("size mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gzip_short_inputs_error_not_panic() {
        // Anything below the minimal gzip frame (10-byte header + 8-byte
        // trailer) must come back as a decode error, never a slice panic
        // — truncated bodies are a first-class fault in the chaos layer.
        let valid = gzip_compress(b"short-input probe payload");
        for len in 0..18usize {
            assert!(gzip_decompress(&vec![0u8; len]).is_err(), "zeros len {len}");
            assert!(gzip_decompress(&valid[..len]).is_err(), "prefix len {len}");
            // Magic + method intact but frame still too short.
            let mut magic = vec![0x1f, 0x8b, 8];
            magic.resize(len.max(3), 0);
            assert!(gzip_decompress(&magic[..len.min(magic.len())]).is_err());
        }
        // Header claims FEXTRA/FNAME/FCOMMENT data that runs off the end.
        for flags in [0x04u8, 0x08, 0x10, 0x1c] {
            let mut hdr = vec![0x1f, 0x8b, 8, flags, 0, 0, 0, 0, 0, 255];
            hdr.extend_from_slice(&[0xff; 8]); // exactly 18 bytes, no room
            assert_eq!(gzip_decompress(&hdr), Err(InflateError::Truncated));
        }
        // And an untouched full member still decodes.
        assert_eq!(
            gzip_decompress(&valid).unwrap(),
            b"short-input probe payload"
        );
    }

    #[test]
    fn deflate_inflate_roundtrip_text() {
        let text = b"the quick brown fox jumps over the lazy dog; the quick brown fox again and again and again";
        let compressed = deflate(text);
        assert_eq!(inflate(&compressed).unwrap(), text);
        // Repetitive text must actually compress.
        let repetitive = b"abcabcabcabcabcabcabcabcabcabcabcabcabcabcabc".repeat(10);
        let c = deflate(&repetitive);
        assert!(
            c.len() < repetitive.len() / 2,
            "{} vs {}",
            c.len(),
            repetitive.len()
        );
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            assert_eq!(inflate(&deflate(data)).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        assert_eq!(inflate(&deflate(&data)).unwrap(), data);
    }

    #[test]
    fn inflate_stored_block() {
        // Hand-built stored block: BFINAL=1, BTYPE=00, LEN=5, NLEN=!5, "hello".
        let mut raw = vec![0x01, 0x05, 0x00, 0xFA, 0xFF];
        raw.extend_from_slice(b"hello");
        assert_eq!(inflate(&raw).unwrap(), b"hello");
    }

    #[test]
    fn inflate_known_zlib_streams() {
        // Raw-deflate output of CPython's zlib (level 9, wbits -15) —
        // cross-implementation vectors.
        let fixed: [u8; 10] = [203, 72, 205, 201, 201, 87, 200, 64, 144, 0];
        assert_eq!(inflate(&fixed).unwrap(), b"hello hello hello");
        let longer: [u8; 27] = [
            43, 201, 72, 85, 40, 44, 205, 76, 206, 86, 72, 42, 202, 47, 207, 83, 72, 203, 175, 80,
            40, 25, 21, 27, 48, 49, 0,
        ];
        assert_eq!(
            inflate(&longer).unwrap(),
            "the quick brown fox ".repeat(20).as_bytes()
        );
    }

    #[test]
    fn inflate_rejects_garbage() {
        assert!(inflate(&[0x07, 0xFF]).is_err()); // reserved block type
        assert_eq!(inflate(&[]), Err(InflateError::Truncated));
        // Stored block with broken NLEN.
        assert!(inflate(&[0x01, 0x05, 0x00, 0x00, 0x00, b'h']).is_err());
    }

    #[test]
    fn crc32_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn gzip_roundtrip() {
        let payload = br#"{"events":[{"email":"jane@x.com","lat":42.36}]}"#;
        let gz = gzip_compress(payload);
        assert_eq!(&gz[..2], &[0x1f, 0x8b]);
        assert_eq!(gzip_decompress(&gz).unwrap(), payload);
    }

    #[test]
    fn gzip_detects_corruption() {
        let mut gz = gzip_compress(b"payload payload payload");
        let mid = gz.len() / 2;
        gz[mid] ^= 0xFF;
        assert!(gzip_decompress(&gz).is_err());
        // Bad magic.
        let mut bad = gzip_compress(b"x");
        bad[0] = 0;
        assert_eq!(
            gzip_decompress(&bad),
            Err(InflateError::BadGzip("bad magic"))
        );
    }

    #[test]
    fn into_variants_append_without_clearing() {
        let payload = b"pooled-buffer payload payload payload";
        let mut buf = b"prefix".to_vec();
        gzip_compress_into(payload, &mut buf);
        assert!(buf.starts_with(b"prefix"));
        assert_eq!(&buf[6..], gzip_compress(payload).as_slice());

        let gz = gzip_compress(payload);
        let mut out = b"earlier".to_vec();
        gzip_decompress_into(&gz, &mut out).unwrap();
        assert_eq!(&out[..7], b"earlier");
        assert_eq!(&out[7..], payload);
    }

    #[test]
    fn decompress_into_restores_length_on_error() {
        let mut gz = gzip_compress(b"will be corrupted soon enough");
        let mid = gz.len() / 2;
        gz[mid] ^= 0xFF;
        let mut out = b"keep".to_vec();
        assert!(gzip_decompress_into(&gz, &mut out).is_err());
        assert_eq!(out, b"keep", "partial output must be rolled back");
    }

    #[test]
    fn inflate_into_cannot_reference_preexisting_bytes() {
        // A back-reference at stream start (distance 1 before any
        // output) is corrupt even when the target buffer is non-empty:
        // the pooled buffer's earlier contents are out of bounds.
        let text = b"abcdabcdabcdabcd";
        let stream = deflate(text);
        let mut fresh = Vec::new();
        inflate_into(&stream, &mut fresh).unwrap();
        let mut appended = b"XXXX".to_vec();
        inflate_into(&stream, &mut appended).unwrap();
        assert_eq!(&appended[4..], fresh.as_slice());
    }

    #[test]
    fn gzip_with_filename_header() {
        // Build a member with FNAME set manually.
        let payload = b"named content";
        let mut gz = vec![0x1f, 0x8b, 8, 0x08, 0, 0, 0, 0, 0, 255];
        gz.extend_from_slice(b"file.txt\0");
        gz.extend_from_slice(&deflate(payload));
        gz.extend_from_slice(&crc32(payload).to_le_bytes());
        gz.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), payload);
    }
}
