//! Byte/text codecs used throughout the pipeline.
//!
//! The PII detector has to find identifiers that services transmit under a
//! variety of encodings (the paper notes GPS coordinates sent with
//! arbitrary precision and identifiers "formatted inconsistently"). The
//! codecs here are shared between the HTTP layer (percent/form encoding)
//! and the PII encoder zoo (base64, hex).

/// Bytes that never need percent-encoding inside a query component.
///
/// This matches the conservative "unreserved" set of RFC 3986 plus a few
/// characters that browsers commonly leave bare in query strings.
fn is_query_safe(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~' | b'*')
}

/// Percent-encode `input` for use in a URL query component.
///
/// Spaces become `%20` (use [`form_urlencode`] for `+`-style encoding).
///
/// ```
/// use appvsweb_httpsim::codec::percent_encode;
/// assert_eq!(percent_encode("a b&c"), "a%20b%26c");
/// ```
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for &b in input.as_bytes() {
        if is_query_safe(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(hex_digit(b >> 4));
            out.push(hex_digit(b & 0xf));
        }
    }
    out
}

/// Percent-decode a query component. Invalid escapes are passed through
/// verbatim, matching lenient browser behaviour; `+` decodes to space.
///
/// ```
/// use appvsweb_httpsim::codec::percent_decode;
/// assert_eq!(percent_decode("a%20b%26c"), "a b&c");
/// assert_eq!(percent_decode("a+b"), "a b");
/// assert_eq!(percent_decode("100%"), "100%");
/// ```
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if let (Some(&h), Some(&l)) = (bytes.get(i + 1), bytes.get(i + 2)) {
                    if let (Some(hi), Some(lo)) = (from_hex_digit(h), from_hex_digit(l)) {
                        appvsweb_cover::cover!();
                        out.push((hi << 4) | lo);
                        i += 3;
                        continue;
                    }
                }
                appvsweb_cover::cover!();
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                appvsweb_cover::cover!();
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_digit(v: u8) -> char {
    match v {
        0..=9 => (b'0' + v) as char,
        _ => (b'A' + v - 10) as char,
    }
}

fn from_hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Encode key/value pairs as `application/x-www-form-urlencoded`
/// (spaces become `+`, pair order preserved).
///
/// ```
/// use appvsweb_httpsim::codec::form_urlencode;
/// let enc = form_urlencode(&[("q", "rust lang"), ("page", "1")]);
/// assert_eq!(enc, "q=rust+lang&page=1");
/// ```
pub fn form_urlencode(pairs: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push('&');
        }
        out.push_str(&percent_encode(k).replace("%20", "+"));
        out.push('=');
        out.push_str(&percent_encode(v).replace("%20", "+"));
    }
    out
}

/// Decode an `application/x-www-form-urlencoded` (or URL query) string into
/// key/value pairs. Keys without `=` get an empty value.
///
/// ```
/// use appvsweb_httpsim::codec::form_urldecode;
/// let pairs = form_urldecode("q=rust+lang&flag");
/// assert_eq!(pairs, vec![("q".into(), "rust lang".into()), ("flag".into(), String::new())]);
/// ```
pub fn form_urldecode(input: &str) -> Vec<(String, String)> {
    input
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => {
                appvsweb_cover::cover!();
                (percent_decode(k), percent_decode(v))
            }
            None => {
                appvsweb_cover::cover!();
                (percent_decode(pair), String::new())
            }
        })
        .collect()
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const B64_URL_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Standard base64 with padding.
///
/// ```
/// use appvsweb_httpsim::codec::base64_encode;
/// assert_eq!(base64_encode(b"hi"), "aGk=");
/// ```
pub fn base64_encode(data: &[u8]) -> String {
    base64_encode_with(data, B64_ALPHABET, true)
}

/// URL-safe base64 without padding (as used in many tracking beacons).
pub fn base64url_encode(data: &[u8]) -> String {
    base64_encode_with(data, B64_URL_ALPHABET, false)
}

fn base64_encode_with(data: &[u8], alphabet: &[u8; 64], pad: bool) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk.first().copied().unwrap_or(0) as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(alphabet[(n >> 18) as usize & 0x3f] as char);
        out.push(alphabet[(n >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(alphabet[(n >> 6) as usize & 0x3f] as char);
        } else if pad {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(alphabet[n as usize & 0x3f] as char);
        } else if pad {
            out.push('=');
        }
    }
    out
}

/// Decode standard or URL-safe base64, with or without padding.
/// Returns `None` on any invalid character.
///
/// ```
/// use appvsweb_httpsim::codec::base64_decode;
/// assert_eq!(base64_decode("aGk=").unwrap(), b"hi");
/// assert_eq!(base64_decode("aGk").unwrap(), b"hi");
/// ```
pub fn base64_decode(input: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() / 4 * 3);
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for &b in input.as_bytes() {
        let v = match b {
            b'A'..=b'Z' => b - b'A',
            b'a'..=b'z' => b - b'a' + 26,
            b'0'..=b'9' => b - b'0' + 52,
            b'+' | b'-' => {
                appvsweb_cover::cover!();
                62
            }
            b'/' | b'_' => {
                appvsweb_cover::cover!();
                63
            }
            b'=' => {
                appvsweb_cover::cover!();
                continue;
            }
            b'\r' | b'\n' => {
                appvsweb_cover::cover!();
                continue;
            }
            _ => {
                appvsweb_cover::cover!();
                return None;
            }
        } as u32;
        acc = (acc << 6) | v;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    Some(out)
}

/// Lowercase hex encoding.
///
/// ```
/// use appvsweb_httpsim::codec::hex_encode;
/// assert_eq!(hex_encode(b"\x01\xff"), "01ff");
/// ```
pub fn hex_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(hex_digit(b >> 4).to_ascii_lowercase());
        out.push(hex_digit(b & 0xf).to_ascii_lowercase());
    }
    out
}

/// Decode a hex string (either case). Returns `None` on odd length or a
/// non-hex character.
pub fn hex_decode(input: &str) -> Option<Vec<u8>> {
    let bytes = input.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        appvsweb_cover::cover!();
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks(2) {
        let &[hi, lo] = pair else { return None };
        let Some(hi) = from_hex_digit(hi) else {
            appvsweb_cover::cover!();
            return None;
        };
        let Some(lo) = from_hex_digit(lo) else {
            appvsweb_cover::cover!();
            return None;
        };
        out.push((hi << 4) | lo);
    }
    appvsweb_cover::cover!();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip_basic() {
        let s = "user@example.com & more: 42.361,-71.058";
        assert_eq!(percent_decode(&percent_encode(s)), s);
    }

    #[test]
    fn percent_encode_leaves_safe_chars() {
        assert_eq!(percent_encode("abc-XYZ_0.9~*"), "abc-XYZ_0.9~*");
    }

    #[test]
    fn percent_decode_lenient_on_bad_escape() {
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn form_codec_roundtrip() {
        let pairs = [("email", "a b@c.com"), ("gender", "F"), ("empty", "")];
        let enc = form_urlencode(&pairs);
        let dec = form_urldecode(&enc);
        assert_eq!(dec.len(), 3);
        assert_eq!(dec[0], ("email".to_string(), "a b@c.com".to_string()));
        assert_eq!(dec[2].1, "");
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn base64url_no_padding() {
        let enc = base64url_encode(&[0xfb, 0xff]);
        assert!(!enc.contains('='));
        assert!(enc.contains('-') || enc.contains('_') || !enc.contains('+'));
        assert_eq!(base64_decode(&enc).unwrap(), vec![0xfb, 0xff]);
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("not base64 !!!").is_none());
    }

    #[test]
    fn hex_roundtrip_and_reject() {
        assert_eq!(
            hex_decode(&hex_encode(b"\x00\x7f\xff")).unwrap(),
            b"\x00\x7f\xff"
        );
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
        assert_eq!(hex_decode("AbCd").unwrap(), vec![0xab, 0xcd]);
    }
}
