//! HTTP request/response message types.

use crate::codec::form_urldecode;
use crate::cookie::{parse_cookie_header, Cookie, SetCookie};
use crate::headers::HeaderMap;
use crate::url::Url;
use std::fmt;

/// HTTP request method. Only the methods observed in the study's traffic
/// are modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET — page loads, beacons, pixel fires.
    Get,
    /// POST — logins, form submissions, SDK batch uploads.
    Post,
    /// PUT — occasional REST API writes.
    Put,
    /// HEAD — cache validation.
    Head,
    /// DELETE — rare REST API deletes.
    Delete,
}

impl Method {
    /// Method token as it appears on the request line.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Head => "HEAD",
            Method::Delete => "DELETE",
        }
    }

    /// Parse a method token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "HEAD" => Method::Head,
            "DELETE" => Method::Delete,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP protocol version (the study's 2016 traffic is HTTP/1.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Version {
    /// HTTP/1.0 — still seen from some legacy trackers.
    Http10,
    /// HTTP/1.1 — the default.
    #[default]
    Http11,
}

impl Version {
    /// Version token as it appears on the request line.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }
}

/// HTTP status code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 204 No Content (typical for tracking beacons).
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 302 Found — the workhorse of RTB redirect chains.
    pub const FOUND: StatusCode = StatusCode(302);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);

    /// Whether this is a 3xx redirect.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Whether this is a 2xx success.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Canonical reason phrase for the codes the simulation emits.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// A message body plus its declared content type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Body {
    /// Raw body bytes.
    pub bytes: Vec<u8>,
    /// `Content-Type` value, if declared.
    pub content_type: Option<String>,
}

impl Body {
    /// Empty body.
    pub fn empty() -> Self {
        Body::default()
    }

    /// A `application/x-www-form-urlencoded` body from pairs.
    pub fn form(pairs: &[(&str, &str)]) -> Self {
        Body {
            bytes: crate::codec::form_urlencode(pairs).into_bytes(),
            content_type: Some("application/x-www-form-urlencoded".into()),
        }
    }

    /// A JSON body from a pre-rendered string.
    pub fn json(text: impl Into<String>) -> Self {
        Body {
            bytes: text.into().into_bytes(),
            content_type: Some("application/json".into()),
        }
    }

    /// A plain-text body.
    pub fn text(text: impl Into<String>) -> Self {
        Body {
            bytes: text.into().into_bytes(),
            content_type: Some("text/plain".into()),
        }
    }

    /// An opaque binary body (images, protobuf-ish SDK payloads).
    pub fn binary(bytes: Vec<u8>, content_type: &str) -> Self {
        Body {
            bytes,
            content_type: Some(content_type.into()),
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Body as UTF-8 text (lossy).
    pub fn as_text(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }

    /// If the body is form-encoded, decode its pairs.
    pub fn form_pairs(&self) -> Option<Vec<(String, String)>> {
        match self.content_type.as_deref() {
            Some(ct) if ct.starts_with("application/x-www-form-urlencoded") => {
                Some(form_urldecode(&self.as_text()))
            }
            _ => None,
        }
    }
}

/// An HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Absolute target URL.
    pub url: Url,
    /// Protocol version.
    pub version: Version,
    /// Request headers.
    pub headers: HeaderMap,
    /// Request body.
    pub body: Body,
}

impl Request {
    /// A GET request for `url` with standard headers.
    pub fn get(url: Url) -> Self {
        Request::new(Method::Get, url)
    }

    /// A POST request with the given body.
    pub fn post(url: Url, body: Body) -> Self {
        let mut r = Request::new(Method::Post, url);
        r.set_body(body);
        r
    }

    /// A request with an empty body.
    pub fn new(method: Method, url: Url) -> Self {
        let mut headers = HeaderMap::new();
        headers.set("Host", url.host.as_str());
        Request {
            method,
            url,
            version: Version::Http11,
            headers,
            body: Body::empty(),
        }
    }

    /// Attach a body, updating `Content-Type` and `Content-Length`.
    pub fn set_body(&mut self, body: Body) {
        if let Some(ct) = &body.content_type {
            self.headers.set("Content-Type", ct.clone());
        }
        self.headers.set("Content-Length", body.len().to_string());
        self.body = body;
    }

    /// Set the `User-Agent` header (builder style).
    pub fn with_user_agent(mut self, ua: impl Into<String>) -> Self {
        self.headers.set("User-Agent", ua.into());
        self
    }

    /// Set the `Referer` header (builder style).
    pub fn with_referer(mut self, referer: impl Into<String>) -> Self {
        self.headers.set("Referer", referer.into());
        self
    }

    /// Cookies attached to this request.
    pub fn cookies(&self) -> Vec<Cookie> {
        self.headers
            .get_all("Cookie")
            .flat_map(parse_cookie_header)
            .collect()
    }

    /// All key/value pairs visible in this request: query parameters, form
    /// body pairs, and cookies. This is the surface the PII detectors scan
    /// first (matching ReCon's structured key/value extraction).
    pub fn kv_pairs(&self) -> Vec<(String, String)> {
        let mut out = self.url.query_pairs();
        if let Some(form) = self.body.form_pairs() {
            out.extend(form);
        }
        for c in self.cookies() {
            out.push((c.name, c.value));
        }
        out
    }

    /// Exact size of this request on the wire, in bytes (computed
    /// arithmetically; equals `serialize_request(self).len()`).
    pub fn wire_len(&self) -> usize {
        crate::wire::request_wire_len(self)
    }
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Protocol version.
    pub version: Version,
    /// Response headers.
    pub headers: HeaderMap,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// A response with the given status and empty body.
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            version: Version::Http11,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// 200 OK with a body.
    pub fn ok(body: Body) -> Self {
        let mut r = Response::new(StatusCode::OK);
        r.set_body(body);
        r
    }

    /// 204 No Content (tracking-beacon style).
    pub fn no_content() -> Self {
        Response::new(StatusCode::NO_CONTENT)
    }

    /// A 302 redirect to `location`.
    pub fn redirect(location: &Url) -> Self {
        let mut r = Response::new(StatusCode::FOUND);
        r.headers.set("Location", location.to_string());
        r
    }

    /// Attach a body, updating `Content-Type` and `Content-Length`.
    pub fn set_body(&mut self, body: Body) {
        if let Some(ct) = &body.content_type {
            self.headers.set("Content-Type", ct.clone());
        }
        self.headers.set("Content-Length", body.len().to_string());
        self.body = body;
    }

    /// Add a `Set-Cookie` header.
    pub fn add_set_cookie(&mut self, sc: &SetCookie) {
        self.headers.append("Set-Cookie", sc.to_header_value());
    }

    /// Parse all `Set-Cookie` headers.
    pub fn set_cookies(&self) -> Vec<SetCookie> {
        self.headers
            .get_all("Set-Cookie")
            .filter_map(SetCookie::parse)
            .collect()
    }

    /// The redirect target, if this is a 3xx with a valid `Location`.
    pub fn redirect_target(&self) -> Option<Url> {
        if !self.status.is_redirect() {
            return None;
        }
        self.headers
            .get("Location")
            .and_then(|l| Url::parse(l).ok())
    }

    /// Exact size of this response on the wire, in bytes (computed
    /// arithmetically; equals `serialize_response(self).len()`).
    pub fn wire_len(&self) -> usize {
        crate::wire::response_wire_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Scheme;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn request_builders_set_headers() {
        let mut r = Request::post(
            url("https://api.grubhub.com/login"),
            Body::form(&[("email", "user@example.com"), ("password", "hunter2")]),
        );
        assert_eq!(r.headers.get("Host"), Some("api.grubhub.com"));
        assert_eq!(
            r.headers.get("Content-Type"),
            Some("application/x-www-form-urlencoded")
        );
        let len: usize = r.headers.get("Content-Length").unwrap().parse().unwrap();
        assert_eq!(len, r.body.len());
        r.headers.set("Cookie", "sid=1; track=2");
        assert_eq!(r.cookies().len(), 2);
    }

    #[test]
    fn kv_pairs_merge_query_form_cookies() {
        let mut u = Url::new(Scheme::Https, "t.example.com", "/beacon");
        u.push_query("uid", "abc123");
        let mut r = Request::post(u, Body::form(&[("gender", "F")]));
        r.headers.set("Cookie", "_ga=GA1.2.9");
        let kv = r.kv_pairs();
        assert_eq!(kv.len(), 3);
        assert!(kv.contains(&("uid".into(), "abc123".into())));
        assert!(kv.contains(&("gender".into(), "F".into())));
        assert!(kv.contains(&("_ga".into(), "GA1.2.9".into())));
    }

    #[test]
    fn response_redirect_roundtrip() {
        let target = url("https://ads.example.net/rtb?bid=7");
        let r = Response::redirect(&target);
        assert_eq!(r.redirect_target().unwrap(), target);
        assert!(Response::ok(Body::text("hi")).redirect_target().is_none());
    }

    #[test]
    fn response_set_cookie_roundtrip() {
        let mut r = Response::no_content();
        r.add_set_cookie(&SetCookie::session("u", "42").with_domain("example.com"));
        r.add_set_cookie(&SetCookie::session("s", "x"));
        let parsed = r.set_cookies();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].domain.as_deref(), Some("example.com"));
    }

    #[test]
    fn status_code_classes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert_eq!(StatusCode(302).reason(), "Found");
    }

    #[test]
    fn body_form_pairs_requires_content_type() {
        let b = Body::text("a=1&b=2");
        assert!(b.form_pairs().is_none());
        let f = Body::form(&[("a", "1")]);
        assert_eq!(f.form_pairs().unwrap(), vec![("a".into(), "1".into())]);
    }
}

appvsweb_json::impl_json!(
    enum Method {
        Get,
        Post,
        Put,
        Head,
        Delete,
    }
);
appvsweb_json::impl_json!(
    enum Version {
        Http10,
        Http11,
    }
);
appvsweb_json::impl_json!(newtype StatusCode(u16));
appvsweb_json::impl_json!(struct Body { bytes, content_type });
appvsweb_json::impl_json!(struct Request { method, url, version, headers, body });
appvsweb_json::impl_json!(struct Response { status, version, headers, body });
