//! Fuzz entry points: codec round-trips and gzip/DEFLATE totality.
//!
//! Two targets share this module because they share the dictionary
//! family (HTTP tokens and the gzip magic):
//!
//! * [`run_codec`] — percent/form/base64/hex codecs. Decoders must be
//!   total on arbitrary input, and every decode∘encode pair must be the
//!   identity on the original data.
//! * [`run_gzip`] — the DEFLATE inflater and the gzip framing. Both
//!   must return typed errors (never panic) on arbitrary bytes, and
//!   compress∘decompress must round-trip the fuzz input itself.

use crate::codec;
use crate::compress;

/// Codec target: totality plus round-trip laws on the fuzz bytes.
pub fn run_codec(data: &[u8]) {
    // Round-trips on raw bytes.
    let b64 = codec::base64_encode(data);
    assert_eq!(
        codec::base64_decode(&b64).as_deref(),
        Some(data),
        "base64 round-trip"
    );
    let hex = codec::hex_encode(data);
    assert_eq!(
        codec::hex_decode(&hex).as_deref(),
        Some(data),
        "hex round-trip"
    );
    // Totality of the decoders on arbitrary (lossy-decoded) text.
    let text = String::from_utf8_lossy(data);
    let _ = codec::base64_decode(&text);
    let _ = codec::hex_decode(&text);
    let decoded = codec::percent_decode(&text);
    // Encoding the decoded text and decoding again is a fixed point.
    let reencoded = codec::percent_encode(&decoded);
    assert_eq!(
        codec::percent_decode(&reencoded),
        decoded,
        "percent-codec fixed point"
    );
    // Form decoding is total and its pairs re-encode losslessly.
    let pairs = codec::form_urldecode(&text);
    let borrowed: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let encoded = codec::form_urlencode(&borrowed);
    assert_eq!(
        codec::form_urldecode(&encoded),
        pairs,
        "form-codec round-trip"
    );
}

/// Gzip/DEFLATE target: inflater totality and compressor round-trip.
pub fn run_gzip(data: &[u8]) {
    // Arbitrary bytes through both framings: typed errors only.
    let _ = compress::inflate(data);
    let _ = compress::gzip_decompress(data);
    // The compressors must round-trip the fuzz input itself.
    let deflated = compress::deflate(data);
    assert_eq!(
        compress::inflate(&deflated).as_deref(),
        Ok(data),
        "deflate round-trip"
    );
    let gz = compress::gzip_compress(data);
    assert_eq!(
        compress::gzip_decompress(&gz).as_deref(),
        Ok(data),
        "gzip round-trip"
    );
}

/// Codec dictionary: encodings' alphabet edges and HTTP query tokens.
pub const CODEC_DICT: &[&[u8]] = &[
    b"%",
    b"%20",
    b"%2",
    b"%ff",
    b"%FF",
    b"+",
    b"=",
    b"&",
    b"==",
    b"aGk=",
    b"deadbeef",
    b"q=",
    b"a=b&c=d",
    b"%e2%82%ac",
];

/// Codec seeds.
pub const CODEC_SEEDS: &[&[u8]] = &[
    b"q=rust+lang&page=1",
    b"a%20b%26c",
    b"SGVsbG8sIHdvcmxkIQ==",
    b"0123456789abcdef",
];

/// Gzip dictionary: magic, method, flag bytes, block-type shrapnel,
/// and stored-block length fields.
pub const GZIP_DICT: &[&[u8]] = &[
    &[0x1f, 0x8b],
    &[0x1f, 0x8b, 0x08, 0x00],
    &[0x1f, 0x8b, 0x08, 0x1c],
    &[0x08],
    &[0x01, 0x00, 0x00, 0xff, 0xff],
    &[0x03, 0x00],
    &[0x00, 0x00, 0x00, 0x00],
    &[0xff, 0xff, 0xff, 0xff],
];

/// Gzip seeds: a well-formed member (of `b"hello hello hello"`) plus a
/// raw stored-block DEFLATE stream. Regression entries live in the
/// on-disk corpus.
pub const GZIP_SEEDS: &[&[u8]] = &[
    // gzip_compress(b"hello") is itself deterministic, but seeds must be
    // consts; this is the fixed header + a stored block + trailer.
    &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff, // header
        0x01, 0x05, 0x00, 0xfa, 0xff, b'h', b'e', b'l', b'l', b'o', // stored block
        0x86, 0xa6, 0x10, 0x36, // crc32("hello")
        0x05, 0x00, 0x00, 0x00, // ISIZE
    ],
    &[0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'],
];
