//! Fuzz entry points: codec round-trips and gzip/DEFLATE totality.
//!
//! Two targets share this module because they share the dictionary
//! family (HTTP tokens and the gzip magic):
//!
//! * [`run_codec`] — percent/form/base64/hex codecs. Decoders must be
//!   total on arbitrary input, and every decode∘encode pair must be the
//!   identity on the original data.
//! * [`run_gzip`] — the DEFLATE inflater and the gzip framing. Both
//!   must return typed errors (never panic) on arbitrary bytes, and
//!   compress∘decompress must round-trip the fuzz input itself.

use crate::codec;
use crate::compress;

/// Codec target: totality plus round-trip laws on the fuzz bytes.
pub fn run_codec(data: &[u8]) {
    // Round-trips on raw bytes.
    let b64 = codec::base64_encode(data);
    assert_eq!(
        codec::base64_decode(&b64).as_deref(),
        Some(data),
        "base64 round-trip"
    );
    let hex = codec::hex_encode(data);
    assert_eq!(
        codec::hex_decode(&hex).as_deref(),
        Some(data),
        "hex round-trip"
    );
    // Totality of the decoders on arbitrary (lossy-decoded) text.
    let text = String::from_utf8_lossy(data);
    let _ = codec::base64_decode(&text);
    let _ = codec::hex_decode(&text);
    let decoded = codec::percent_decode(&text);
    // Encoding the decoded text and decoding again is a fixed point.
    let reencoded = codec::percent_encode(&decoded);
    assert_eq!(
        codec::percent_decode(&reencoded),
        decoded,
        "percent-codec fixed point"
    );
    // Form decoding is total and its pairs re-encode losslessly.
    let pairs = codec::form_urldecode(&text);
    let borrowed: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let encoded = codec::form_urlencode(&borrowed);
    assert_eq!(
        codec::form_urldecode(&encoded),
        pairs,
        "form-codec round-trip"
    );
}

/// Gzip/DEFLATE target: inflater totality, compressor round-trip, and
/// the pooled `_into` variants' differential laws against the plain
/// allocating forms.
pub fn run_gzip(data: &[u8]) {
    // Arbitrary bytes through both framings: typed errors only.
    let _ = compress::inflate(data);
    let _ = compress::gzip_decompress(data);
    // The compressors must round-trip the fuzz input itself.
    let deflated = compress::deflate(data);
    assert_eq!(
        compress::inflate(&deflated).as_deref(),
        Ok(data),
        "deflate round-trip"
    );
    let gz = compress::gzip_compress(data);
    assert_eq!(
        compress::gzip_decompress(&gz).as_deref(),
        Ok(data),
        "gzip round-trip"
    );

    // Differential: the `_into` variants append after a pre-existing
    // prefix and must (a) produce exactly the plain forms' bytes, (b)
    // never disturb the prefix, and (c) truncate back to the prefix on
    // error — a corrupt stream must not hand back half-written output
    // or read the pooled buffer's earlier contents.
    const PREFIX: &[u8] = b"\xa5\xa5pre";
    let mut out = PREFIX.to_vec();
    compress::gzip_compress_into(data, &mut out);
    assert_eq!(
        &out[..PREFIX.len()],
        PREFIX,
        "compress_into moved the prefix"
    );
    assert_eq!(&out[PREFIX.len()..], &gz[..], "compress_into diverged");

    let mut plain = PREFIX.to_vec();
    match compress::gzip_decompress_into(data, &mut plain) {
        Ok(()) => assert_eq!(
            compress::gzip_decompress(data).as_deref(),
            Ok(&plain[PREFIX.len()..]),
            "decompress_into diverged on success"
        ),
        Err(e) => {
            assert_eq!(
                compress::gzip_decompress(data),
                Err(e),
                "decompress_into diverged on error"
            );
            assert_eq!(plain, PREFIX, "error must restore the prefix length");
        }
    }

    let mut inflated = PREFIX.to_vec();
    match compress::inflate_into(data, &mut inflated) {
        Ok(()) => assert_eq!(
            compress::inflate(data).as_deref(),
            Ok(&inflated[PREFIX.len()..]),
            "inflate_into diverged on success"
        ),
        Err(e) => {
            assert_eq!(
                compress::inflate(data),
                Err(e),
                "inflate_into error diverged"
            );
            assert_eq!(
                inflated, PREFIX,
                "inflate error must restore the prefix length"
            );
        }
    }
}

/// Wire target: both HTTP parser generations over arbitrary bytes.
///
/// The zero-copy [`crate::wire::MessageView`] parsers must agree with
/// the retained eager reference parsers on every input — success,
/// failure, and error value alike — and anything that parses must obey
/// the arithmetic wire-length law the MITM byte accounting relies on.
pub fn run_wire(data: &[u8]) {
    let req_secure = crate::wire::parse_request(data, true);
    let req_plain = crate::wire::parse_request(data, false);
    let resp = crate::wire::parse_response(data);

    #[cfg(any(test, feature = "reference"))]
    {
        use crate::wire::reference;
        assert_eq!(
            req_secure,
            reference::parse_request_reference(data, true),
            "request parse diverged (secure)"
        );
        assert_eq!(
            req_plain,
            reference::parse_request_reference(data, false),
            "request parse diverged (plain)"
        );
        assert_eq!(
            resp,
            reference::parse_response_reference(data),
            "response parse diverged"
        );
    }

    if let Ok(req) = req_secure {
        let bytes = crate::wire::serialize_request(&req);
        assert_eq!(
            bytes.len(),
            crate::wire::request_wire_len(&req),
            "request wire-length arithmetic diverged"
        );
    }
    let _ = req_plain;
    if let Ok(resp) = resp {
        let bytes = crate::wire::serialize_response(&resp);
        assert_eq!(
            bytes.len(),
            crate::wire::response_wire_len(&resp),
            "response wire-length arithmetic diverged"
        );
        #[cfg(any(test, feature = "reference"))]
        assert_eq!(
            bytes,
            crate::wire::reference::serialize_response_reference(&resp),
            "response serializer diverged from reference"
        );
    }
}

/// Codec dictionary: encodings' alphabet edges and HTTP query tokens.
pub const CODEC_DICT: &[&[u8]] = &[
    b"%",
    b"%20",
    b"%2",
    b"%ff",
    b"%FF",
    b"+",
    b"=",
    b"&",
    b"==",
    b"aGk=",
    b"deadbeef",
    b"q=",
    b"a=b&c=d",
    b"%e2%82%ac",
];

/// Codec seeds.
pub const CODEC_SEEDS: &[&[u8]] = &[
    b"q=rust+lang&page=1",
    b"a%20b%26c",
    b"SGVsbG8sIHdvcmxkIQ==",
    b"0123456789abcdef",
];

/// Gzip dictionary: magic, method, flag bytes, block-type shrapnel,
/// and stored-block length fields.
pub const GZIP_DICT: &[&[u8]] = &[
    &[0x1f, 0x8b],
    &[0x1f, 0x8b, 0x08, 0x00],
    &[0x1f, 0x8b, 0x08, 0x1c],
    &[0x08],
    &[0x01, 0x00, 0x00, 0xff, 0xff],
    &[0x03, 0x00],
    &[0x00, 0x00, 0x00, 0x00],
    &[0xff, 0xff, 0xff, 0xff],
];

/// Wire dictionary: start-line scaffolding, framing headers, and chunk
/// framing shrapnel (hex sizes, the terminal chunk).
pub const WIRE_DICT: &[&[u8]] = &[
    b"GET ",
    b"POST ",
    b" HTTP/1.1\r\n",
    b"HTTP/1.1 200 OK\r\n",
    b"HTTP/1.1 404 Not Found\r\n",
    b"Host: ",
    b"Content-Length: ",
    b"Transfer-Encoding: chunked\r\n",
    b"Content-Type: application/x-www-form-urlencoded\r\n",
    b"\r\n\r\n",
    b"\r\n",
    b"5\r\n",
    b"400\r\n",
    b"0\r\n\r\n",
];

/// Wire seeds: one request and one response of each framing kind.
pub const WIRE_SEEDS: &[&[u8]] = &[
    b"GET /search?q=privacy HTTP/1.1\r\nHost: www.example.com\r\n\r\n",
    b"POST /login HTTP/1.1\r\nHost: api.example.com\r\nContent-Length: 17\r\n\r\nuser=jane&pass=x1",
    b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello",
    b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
    b"HTTP/1.1 204 No Content\r\n\r\n",
];

/// Gzip seeds: a well-formed member (of `b"hello hello hello"`) plus a
/// raw stored-block DEFLATE stream. Regression entries live in the
/// on-disk corpus.
pub const GZIP_SEEDS: &[&[u8]] = &[
    // gzip_compress(b"hello") is itself deterministic, but seeds must be
    // consts; this is the fixed header + a stored block + trailer.
    &[
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff, // header
        0x01, 0x05, 0x00, 0xfa, 0xff, b'h', b'e', b'l', b'l', b'o', // stored block
        0x86, 0xa6, 0x10, 0x36, // crc32("hello")
        0x05, 0x00, 0x00, 0x00, // ISIZE
    ],
    &[0x01, 0x03, 0x00, 0xfc, 0xff, b'a', b'b', b'c'],
];
