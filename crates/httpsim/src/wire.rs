//! HTTP/1.1 wire (de)serialization.
//!
//! The MITM proxy stores flows as the raw bytes it forwarded; the PII
//! detectors then re-parse those bytes. Serializing and parsing real wire
//! format (rather than passing structs around) keeps detection honest: a
//! leak is only found if it survives the trip through actual HTTP syntax,
//! exactly as in the mitmproxy-based original pipeline.

use crate::headers::HeaderMap;
use crate::message::{Body, Method, Request, Response, StatusCode, Version};
use crate::url::{Scheme, Url};

/// Error from the wire parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The start line was malformed.
    BadStartLine,
    /// A header line was malformed.
    BadHeader,
    /// Body was shorter than `Content-Length`, or chunked framing broke.
    Truncated,
    /// A chunk size line failed to parse.
    BadChunk,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadStartLine => f.write_str("malformed start line"),
            WireError::BadHeader => f.write_str("malformed header"),
            WireError::Truncated => f.write_str("truncated body"),
            WireError::BadChunk => f.write_str("bad chunk framing"),
        }
    }
}

impl std::error::Error for WireError {}

/// Chunk size used when a response declares `Transfer-Encoding: chunked`.
pub const CHUNK_SIZE: usize = 1024;

/// Serialize a request to HTTP/1.1 wire bytes (origin-form target).
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(request_wire_len(req));
    serialize_request_into(req, &mut buf);
    buf
}

/// Append a request's wire bytes to `buf` (pooled-buffer entry point;
/// the caller owns clearing). Appends exactly [`request_wire_len`] bytes.
pub fn serialize_request_into(req: &Request, buf: &mut Vec<u8>) {
    buf.extend_from_slice(req.method.as_str().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(req.url.request_target().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(req.version.as_str().as_bytes());
    buf.extend_from_slice(b"\r\n");
    put_headers(buf, &req.headers);
    buf.extend_from_slice(b"\r\n");
    buf.extend_from_slice(&req.body.bytes);
}

/// Serialize a response to HTTP/1.1 wire bytes.
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(response_wire_len(resp));
    serialize_response_into(resp, &mut buf);
    buf
}

/// Append a response's wire bytes to `buf`. Appends exactly
/// [`response_wire_len`] bytes; chunked framing is written in place
/// (no intermediate chunk buffer).
pub fn serialize_response_into(resp: &Response, buf: &mut Vec<u8>) {
    buf.extend_from_slice(resp.version.as_str().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(resp.status.0.to_string().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(resp.status.reason().as_bytes());
    buf.extend_from_slice(b"\r\n");
    put_headers(buf, &resp.headers);
    buf.extend_from_slice(b"\r\n");
    if is_chunked(&resp.headers) {
        chunk_body_into(&resp.body.bytes, CHUNK_SIZE, buf);
    } else {
        buf.extend_from_slice(&resp.body.bytes);
    }
}

/// Exact length of [`serialize_request`]'s output, computed without
/// serializing. The MITM proxy logs per-exchange `bytes=` figures that
/// are pinned by trace goldens; this must equal the serialized length
/// to the byte (the differential suite proves it).
pub fn request_wire_len(req: &Request) -> usize {
    req.method.as_str().len()
        + 1
        + req.url.request_target().len()
        + 1
        + req.version.as_str().len()
        + 2
        + headers_wire_len(&req.headers)
        + 2
        + req.body.len()
}

/// Exact length of [`serialize_response`]'s output, computed without
/// serializing (chunked framing included).
pub fn response_wire_len(resp: &Response) -> usize {
    let body = if is_chunked(&resp.headers) {
        chunked_wire_len(resp.body.len(), CHUNK_SIZE)
    } else {
        resp.body.len()
    };
    resp.version.as_str().len()
        + 1
        + decimal_digits(resp.status.0 as usize)
        + 1
        + resp.status.reason().len()
        + 2
        + headers_wire_len(&resp.headers)
        + 2
        + body
}

fn is_chunked(headers: &HeaderMap) -> bool {
    headers
        .get("Transfer-Encoding")
        .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
}

fn headers_wire_len(headers: &HeaderMap) -> usize {
    headers.iter().map(|(n, v)| n.len() + 2 + v.len() + 2).sum()
}

/// Exact length of [`chunk_body`]'s framing for a body of `body_len`
/// bytes: per chunk `hex_digits(len) + 2 + len + 2`, plus the 5-byte
/// `0\r\n\r\n` terminator.
pub fn chunked_wire_len(body_len: usize, chunk_size: usize) -> usize {
    let chunk_size = chunk_size.max(1);
    let full = body_len / chunk_size;
    let rem = body_len % chunk_size;
    let mut n = full * (hex_digits(chunk_size) + 4 + chunk_size);
    if rem > 0 {
        n += hex_digits(rem) + 4 + rem;
    }
    n + 5
}

fn hex_digits(n: usize) -> usize {
    if n == 0 {
        1
    } else {
        ((usize::BITS - n.leading_zeros()).div_ceil(4)) as usize
    }
}

fn decimal_digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

fn put_headers(buf: &mut Vec<u8>, headers: &HeaderMap) {
    for (n, v) in headers.iter() {
        buf.extend_from_slice(n.as_bytes());
        buf.extend_from_slice(b": ");
        buf.extend_from_slice(v.as_bytes());
        buf.extend_from_slice(b"\r\n");
    }
}

/// Frame `body` as chunked transfer encoding with the given chunk size.
pub fn chunk_body(body: &[u8], chunk_size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(chunked_wire_len(body.len(), chunk_size));
    chunk_body_into(body, chunk_size, &mut out);
    out
}

/// Append chunked framing for `body` to `out`, with no intermediate
/// allocation per chunk.
pub fn chunk_body_into(body: &[u8], chunk_size: usize, out: &mut Vec<u8>) {
    let chunk_size = chunk_size.max(1);
    for chunk in body.chunks(chunk_size) {
        push_hex(chunk.len(), out);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
}

/// Append `n` as lowercase hex (a chunk-size line), bypassing `fmt` —
/// this runs once per chunk on the origin's serialization path.
fn push_hex(mut n: usize, out: &mut Vec<u8>) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 2 * std::mem::size_of::<usize>()];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = DIGITS[n & 0xf];
        n >>= 4;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Decode a chunked-encoded body back to its plain bytes.
pub fn dechunk_body(mut data: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(data.len());
    loop {
        let line_end = find_crlf(data).ok_or(WireError::BadChunk)?;
        let size_line = std::str::from_utf8(&data[..line_end]).map_err(|_| WireError::BadChunk)?;
        let size_str = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| WireError::BadChunk)?;
        data = &data[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if data.len() < size + 2 {
            return Err(WireError::Truncated);
        }
        out.extend_from_slice(&data[..size]);
        if &data[size..size + 2] != b"\r\n" {
            return Err(WireError::BadChunk);
        }
        data = &data[size + 2..];
    }
}

fn find_crlf(data: &[u8]) -> Option<usize> {
    data.windows(2).position(|w| w == b"\r\n")
}

/// Borrowed view of a raw HTTP/1.1 message: start line, header
/// name/value slices, and body bytes, all pointing into the input.
/// Nothing is copied until the caller materializes owned structures
/// (the MITM recording boundary) via [`MessageView::to_header_map`].
#[derive(Debug)]
pub struct MessageView<'a> {
    /// The request or status line, without its CRLF.
    pub start: &'a str,
    /// Header `(name, value)` slices in wire order, values trimmed.
    pub headers: Vec<(&'a str, &'a str)>,
    /// Raw body bytes (still chunked/encoded as on the wire).
    pub body: &'a [u8],
}

impl<'a> MessageView<'a> {
    /// First header value matching `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&'a str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|&(_, v)| v)
    }

    /// Materialize the borrowed headers into an owned [`HeaderMap`].
    pub fn to_header_map(&self) -> HeaderMap {
        let mut map = HeaderMap::new();
        for &(n, v) in &self.headers {
            map.append(n, v);
        }
        map
    }
}

/// Split raw bytes into a zero-copy [`MessageView`].
pub fn split_message_view(data: &[u8]) -> Result<MessageView<'_>, WireError> {
    let header_end = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(WireError::Truncated)?;
    let head = std::str::from_utf8(&data[..header_end]).map_err(|_| WireError::BadHeader)?;
    let body = &data[header_end + 4..];

    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(WireError::BadStartLine)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(WireError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(WireError::BadHeader);
        }
        headers.push((name, value.trim()));
    }
    Ok(MessageView {
        start,
        headers,
        body,
    })
}

/// Parse request wire bytes. `secure` tells the parser which scheme the
/// bytes travelled over (the request line carries only the origin-form
/// target; the scheme is a property of the connection).
pub fn parse_request(data: &[u8], secure: bool) -> Result<Request, WireError> {
    let view = split_message_view(data)?;
    let mut parts = view.start.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(WireError::BadStartLine)?;
    let target = parts.next().ok_or(WireError::BadStartLine)?;
    let version = parse_version(parts.next().ok_or(WireError::BadStartLine)?)?;

    let host = view.header("Host").ok_or(WireError::BadStartLine)?;
    let scheme = if secure { Scheme::Https } else { Scheme::Http };
    let url = Url::parse(&format!("{}://{}{}", scheme.as_str(), host, target))
        .map_err(|_| WireError::BadStartLine)?;

    let body = read_body_view(&view)?;
    Ok(Request {
        method,
        url,
        version,
        headers: view.to_header_map(),
        body,
    })
}

/// Parse response wire bytes.
pub fn parse_response(data: &[u8]) -> Result<Response, WireError> {
    let view = split_message_view(data)?;
    let mut parts = view.start.splitn(3, ' ');
    let version = parse_version(parts.next().ok_or(WireError::BadStartLine)?)?;
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or(WireError::BadStartLine)?;
    let body = read_body_view(&view)?;
    Ok(Response {
        status: StatusCode(code),
        version,
        headers: view.to_header_map(),
        body,
    })
}

fn parse_version(s: &str) -> Result<Version, WireError> {
    match s {
        "HTTP/1.0" => Ok(Version::Http10),
        "HTTP/1.1" => Ok(Version::Http11),
        _ => Err(WireError::BadStartLine),
    }
}

/// Decode the body of a zero-copy view (dechunking or slicing to
/// `Content-Length`); this is the first point bytes are copied.
fn read_body_view(view: &MessageView<'_>) -> Result<Body, WireError> {
    let content_type = view.header("Content-Type").map(|s| s.to_string());
    let bytes = if view
        .header("Transfer-Encoding")
        .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
    {
        dechunk_body(view.body)?
    } else if let Some(cl) = view.header("Content-Length") {
        let len: usize = cl.parse().map_err(|_| WireError::BadHeader)?;
        if view.body.len() < len {
            return Err(WireError::Truncated);
        }
        view.body[..len].to_vec()
    } else {
        view.body.to_vec()
    };
    Ok(Body {
        bytes,
        content_type,
    })
}

/// Eager-copy reference parsers, retained as differential oracles for
/// the zero-copy paths (`tests/fastpath_differential.rs`). These are
/// the pre-optimization implementations, kept verbatim.
#[cfg(any(test, feature = "reference"))]
pub mod reference {
    use super::*;

    /// Reference twin of [`parse_request`] built on the eager splitter.
    pub fn parse_request_reference(data: &[u8], secure: bool) -> Result<Request, WireError> {
        let (start, headers, body_bytes) = split_message(data)?;
        let mut parts = start.split(' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or(WireError::BadStartLine)?;
        let target = parts.next().ok_or(WireError::BadStartLine)?;
        let version = parse_version(parts.next().ok_or(WireError::BadStartLine)?)?;

        let host = headers.get("Host").ok_or(WireError::BadStartLine)?;
        let scheme = if secure { Scheme::Https } else { Scheme::Http };
        let url = Url::parse(&format!("{}://{}{}", scheme.as_str(), host, target))
            .map_err(|_| WireError::BadStartLine)?;

        let body = read_body(&headers, body_bytes)?;
        Ok(Request {
            method,
            url,
            version,
            headers,
            body,
        })
    }

    /// Reference twin of [`parse_response`].
    pub fn parse_response_reference(data: &[u8]) -> Result<Response, WireError> {
        let (start, headers, body_bytes) = split_message(data)?;
        let mut parts = start.splitn(3, ' ');
        let version = parse_version(parts.next().ok_or(WireError::BadStartLine)?)?;
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(WireError::BadStartLine)?;
        let body = read_body(&headers, body_bytes)?;
        Ok(Response {
            status: StatusCode(code),
            version,
            headers,
            body,
        })
    }

    /// Eagerly split raw bytes into (start line, headers, body bytes),
    /// copying the head into owned strings.
    fn split_message(data: &[u8]) -> Result<(String, HeaderMap, &[u8]), WireError> {
        let header_end = data
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or(WireError::Truncated)?;
        let head = std::str::from_utf8(&data[..header_end]).map_err(|_| WireError::BadHeader)?;
        let body = &data[header_end + 4..];

        let mut lines = head.split("\r\n");
        let start = lines.next().ok_or(WireError::BadStartLine)?.to_string();
        let mut headers = HeaderMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or(WireError::BadHeader)?;
            if name.is_empty() || name.contains(' ') {
                return Err(WireError::BadHeader);
            }
            headers.append(name, value.trim());
        }
        Ok((start, headers, body))
    }

    fn read_body(headers: &HeaderMap, body_bytes: &[u8]) -> Result<Body, WireError> {
        let content_type = headers.get("Content-Type").map(|s| s.to_string());
        let bytes = if headers
            .get("Transfer-Encoding")
            .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
        {
            dechunk_body(body_bytes)?
        } else if let Some(cl) = headers.get("Content-Length") {
            let len: usize = cl.parse().map_err(|_| WireError::BadHeader)?;
            if body_bytes.len() < len {
                return Err(WireError::Truncated);
            }
            body_bytes[..len].to_vec()
        } else {
            body_bytes.to_vec()
        };
        Ok(Body {
            bytes,
            content_type,
        })
    }

    /// Reference twin of [`serialize_response`]: builds the chunk
    /// framing through an intermediate buffer exactly as the
    /// pre-optimization serializer did.
    pub fn serialize_response_reference(resp: &Response) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + resp.body.len());
        buf.extend_from_slice(resp.version.as_str().as_bytes());
        buf.push(b' ');
        buf.extend_from_slice(resp.status.0.to_string().as_bytes());
        buf.push(b' ');
        buf.extend_from_slice(resp.status.reason().as_bytes());
        buf.extend_from_slice(b"\r\n");
        put_headers(&mut buf, &resp.headers);
        buf.extend_from_slice(b"\r\n");
        if resp
            .headers
            .get("Transfer-Encoding")
            .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
        {
            let mut chunked = Vec::new();
            for chunk in resp.body.bytes.chunks(CHUNK_SIZE) {
                chunked.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
                chunked.extend_from_slice(chunk);
                chunked.extend_from_slice(b"\r\n");
            }
            chunked.extend_from_slice(b"0\r\n\r\n");
            buf.extend_from_slice(&chunked);
        } else {
            buf.extend_from_slice(&resp.body.bytes);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Body, Request, Response};
    use crate::url::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = Request::post(
            url("https://api.example.com/v1/login?src=app"),
            Body::form(&[("user", "jane"), ("password", "s3cret!")]),
        )
        .with_user_agent("ExampleApp/3.2 (Android 4.4)");
        let bytes = serialize_request(&req);
        let parsed = parse_request(&bytes, true).unwrap();
        assert_eq!(parsed.method, req.method);
        assert_eq!(parsed.url, req.url);
        assert_eq!(parsed.body.bytes, req.body.bytes);
        assert_eq!(
            parsed.headers.get("User-Agent"),
            Some("ExampleApp/3.2 (Android 4.4)")
        );
    }

    #[test]
    fn response_roundtrip_plain() {
        let mut resp = Response::ok(Body::json(r#"{"ok":true}"#));
        resp.headers.set("Server", "nginx");
        let bytes = serialize_response(&resp);
        let parsed = parse_response(&bytes).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body.bytes, resp.body.bytes);
    }

    #[test]
    fn response_roundtrip_chunked() {
        let payload = vec![b'x'; 5000];
        let mut resp = Response::new(StatusCode::OK);
        resp.body = Body::binary(payload.clone(), "application/octet-stream");
        resp.headers.set("Content-Type", "application/octet-stream");
        resp.headers.set("Transfer-Encoding", "chunked");
        let bytes = serialize_response(&resp);
        let parsed = parse_response(&bytes).unwrap();
        assert_eq!(parsed.body.bytes, payload);
    }

    #[test]
    fn chunk_dechunk_roundtrip_edge_sizes() {
        for size in [1usize, 2, 3, 1024] {
            let body: Vec<u8> = (0..=255u8).cycle().take(2500).collect();
            let chunked = chunk_body(&body, size);
            assert_eq!(dechunk_body(&chunked).unwrap(), body);
        }
        assert_eq!(dechunk_body(&chunk_body(b"", 16)).unwrap(), b"");
    }

    #[test]
    fn dechunk_rejects_bad_framing() {
        assert_eq!(
            dechunk_body(b"zz\r\nxx\r\n0\r\n\r\n"),
            Err(WireError::BadChunk)
        );
        assert_eq!(dechunk_body(b"5\r\nab"), Err(WireError::Truncated));
        assert_eq!(dechunk_body(b"nothing here"), Err(WireError::BadChunk));
    }

    #[test]
    fn parse_request_requires_host() {
        let raw = b"GET /x HTTP/1.1\r\n\r\n";
        assert!(parse_request(raw, false).is_err());
    }

    #[test]
    fn parse_scheme_follows_connection_security() {
        let raw = b"GET /p HTTP/1.1\r\nHost: example.com\r\n\r\n";
        assert!(!parse_request(raw, true).unwrap().url.is_plaintext());
        assert!(parse_request(raw, false).unwrap().url.is_plaintext());
    }

    #[test]
    fn truncated_content_length_detected() {
        let raw = b"POST /p HTTP/1.1\r\nHost: a.com\r\nContent-Length: 10\r\n\r\nshort";
        assert_eq!(parse_request(raw, false), Err(WireError::Truncated));
    }

    #[test]
    fn bad_header_line_detected() {
        let raw = b"GET / HTTP/1.1\r\nHost: a.com\r\nBadHeaderNoColon\r\n\r\n";
        assert_eq!(parse_request(raw, false), Err(WireError::BadHeader));
    }

    #[test]
    fn request_wire_len_is_exact() {
        let cases = [
            Request::get(url("https://example.com/")),
            Request::get(url("http://a.b.c/path/deep?q=1&r=2")).with_user_agent("UA/1.0"),
            Request::post(
                url("https://api.example.com/v1/login"),
                Body::form(&[("user", "jane"), ("password", "s3cret!")]),
            ),
        ];
        for req in &cases {
            assert_eq!(
                request_wire_len(req),
                serialize_request(req).len(),
                "wire_len diverged for {}",
                req.url.request_target()
            );
        }
    }

    #[test]
    fn response_wire_len_is_exact_plain_and_chunked() {
        for body_len in [0usize, 1, 1023, 1024, 1025, 5000] {
            let mut resp = Response::new(StatusCode::OK);
            resp.body = Body::binary(vec![b'x'; body_len], "application/octet-stream");
            resp.headers.set("Content-Type", "application/octet-stream");
            assert_eq!(response_wire_len(&resp), serialize_response(&resp).len());
            resp.headers.set("Transfer-Encoding", "chunked");
            assert_eq!(
                response_wire_len(&resp),
                serialize_response(&resp).len(),
                "chunked wire_len diverged at body_len={body_len}"
            );
        }
    }

    #[test]
    fn chunked_wire_len_matches_chunk_body() {
        for (body_len, size) in [(0usize, 16usize), (1, 1), (15, 16), (16, 16), (2500, 1024)] {
            let body = vec![0u8; body_len];
            assert_eq!(
                chunked_wire_len(body_len, size),
                chunk_body(&body, size).len()
            );
        }
    }

    #[test]
    fn zero_copy_parse_matches_reference() {
        let good: &[&[u8]] = &[
            b"GET /p?x=1 HTTP/1.1\r\nHost: example.com\r\nCookie: sid=42\r\n\r\n",
            b"POST /l HTTP/1.1\r\nHost: a.com\r\nContent-Length: 5\r\n\r\nhello",
        ];
        let bad: &[&[u8]] = &[
            b"GET /x HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nHost: a.com\r\nNoColon\r\n\r\n",
            b"truncated head",
        ];
        for raw in good.iter().chain(bad) {
            for secure in [false, true] {
                assert_eq!(
                    parse_request(raw, secure),
                    reference::parse_request_reference(raw, secure)
                );
            }
            assert_eq!(
                parse_response(raw),
                reference::parse_response_reference(raw)
            );
        }
        let resp = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        assert_eq!(
            parse_response(resp),
            reference::parse_response_reference(resp)
        );
    }

    #[test]
    fn serialize_response_matches_reference() {
        let mut resp = Response::ok(Body::json(r#"{"ok":true}"#));
        resp.headers.set("Server", "nginx");
        assert_eq!(
            serialize_response(&resp),
            reference::serialize_response_reference(&resp)
        );
        let mut chunked = Response::new(StatusCode::OK);
        chunked.body = Body::binary(vec![b'y'; 3000], "application/octet-stream");
        chunked.headers.set("Transfer-Encoding", "chunked");
        assert_eq!(
            serialize_response(&chunked),
            reference::serialize_response_reference(&chunked)
        );
    }

    #[test]
    fn serialize_into_appends_without_clearing() {
        let req = Request::get(url("https://example.com/a"));
        let mut buf = b"prefix".to_vec();
        serialize_request_into(&req, &mut buf);
        assert!(buf.starts_with(b"prefix"));
        assert_eq!(buf.len(), 6 + request_wire_len(&req));
    }

    #[test]
    fn message_view_borrows_and_materializes() {
        let raw = b"GET /v HTTP/1.1\r\nHost: h.com\r\nX-A: 1\r\nX-A: 2\r\n\r\nbody";
        let view = split_message_view(raw).unwrap();
        assert_eq!(view.start, "GET /v HTTP/1.1");
        assert_eq!(view.header("host"), Some("h.com"));
        assert_eq!(view.header("x-a"), Some("1"), "first value wins");
        assert_eq!(view.body, b"body");
        let map = view.to_header_map();
        assert_eq!(map.get_all("X-A").collect::<Vec<_>>(), vec!["1", "2"]);
    }
}
