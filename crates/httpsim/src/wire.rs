//! HTTP/1.1 wire (de)serialization.
//!
//! The MITM proxy stores flows as the raw bytes it forwarded; the PII
//! detectors then re-parse those bytes. Serializing and parsing real wire
//! format (rather than passing structs around) keeps detection honest: a
//! leak is only found if it survives the trip through actual HTTP syntax,
//! exactly as in the mitmproxy-based original pipeline.

use crate::headers::HeaderMap;
use crate::message::{Body, Method, Request, Response, StatusCode, Version};
use crate::url::{Scheme, Url};

/// Error from the wire parsers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The start line was malformed.
    BadStartLine,
    /// A header line was malformed.
    BadHeader,
    /// Body was shorter than `Content-Length`, or chunked framing broke.
    Truncated,
    /// A chunk size line failed to parse.
    BadChunk,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadStartLine => f.write_str("malformed start line"),
            WireError::BadHeader => f.write_str("malformed header"),
            WireError::Truncated => f.write_str("truncated body"),
            WireError::BadChunk => f.write_str("bad chunk framing"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialize a request to HTTP/1.1 wire bytes (origin-form target).
pub fn serialize_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + req.body.len());
    buf.extend_from_slice(req.method.as_str().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(req.url.request_target().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(req.version.as_str().as_bytes());
    buf.extend_from_slice(b"\r\n");
    put_headers(&mut buf, &req.headers);
    buf.extend_from_slice(b"\r\n");
    buf.extend_from_slice(&req.body.bytes);
    buf
}

/// Serialize a response to HTTP/1.1 wire bytes.
pub fn serialize_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + resp.body.len());
    buf.extend_from_slice(resp.version.as_str().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(resp.status.0.to_string().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(resp.status.reason().as_bytes());
    buf.extend_from_slice(b"\r\n");
    put_headers(&mut buf, &resp.headers);
    buf.extend_from_slice(b"\r\n");
    if resp
        .headers
        .get("Transfer-Encoding")
        .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
    {
        buf.extend_from_slice(&chunk_body(&resp.body.bytes, 1024));
    } else {
        buf.extend_from_slice(&resp.body.bytes);
    }
    buf
}

fn put_headers(buf: &mut Vec<u8>, headers: &HeaderMap) {
    for (n, v) in headers.iter() {
        buf.extend_from_slice(n.as_bytes());
        buf.extend_from_slice(b": ");
        buf.extend_from_slice(v.as_bytes());
        buf.extend_from_slice(b"\r\n");
    }
}

/// Frame `body` as chunked transfer encoding with the given chunk size.
pub fn chunk_body(body: &[u8], chunk_size: usize) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let mut out = Vec::with_capacity(body.len() + 32);
    for chunk in body.chunks(chunk_size) {
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

/// Decode a chunked-encoded body back to its plain bytes.
pub fn dechunk_body(mut data: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(data.len());
    loop {
        let line_end = find_crlf(data).ok_or(WireError::BadChunk)?;
        let size_line = std::str::from_utf8(&data[..line_end]).map_err(|_| WireError::BadChunk)?;
        let size_str = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| WireError::BadChunk)?;
        data = &data[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if data.len() < size + 2 {
            return Err(WireError::Truncated);
        }
        out.extend_from_slice(&data[..size]);
        if &data[size..size + 2] != b"\r\n" {
            return Err(WireError::BadChunk);
        }
        data = &data[size + 2..];
    }
}

fn find_crlf(data: &[u8]) -> Option<usize> {
    data.windows(2).position(|w| w == b"\r\n")
}

/// Parse request wire bytes. `secure` tells the parser which scheme the
/// bytes travelled over (the request line carries only the origin-form
/// target; the scheme is a property of the connection).
pub fn parse_request(data: &[u8], secure: bool) -> Result<Request, WireError> {
    let (start, headers, body_bytes) = split_message(data)?;
    let mut parts = start.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(WireError::BadStartLine)?;
    let target = parts.next().ok_or(WireError::BadStartLine)?;
    let version = parse_version(parts.next().ok_or(WireError::BadStartLine)?)?;

    let host = headers.get("Host").ok_or(WireError::BadStartLine)?;
    let scheme = if secure { Scheme::Https } else { Scheme::Http };
    let url = Url::parse(&format!("{}://{}{}", scheme.as_str(), host, target))
        .map_err(|_| WireError::BadStartLine)?;

    let body = read_body(&headers, body_bytes)?;
    Ok(Request {
        method,
        url,
        version,
        headers,
        body,
    })
}

/// Parse response wire bytes.
pub fn parse_response(data: &[u8]) -> Result<Response, WireError> {
    let (start, headers, body_bytes) = split_message(data)?;
    let mut parts = start.splitn(3, ' ');
    let version = parse_version(parts.next().ok_or(WireError::BadStartLine)?)?;
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or(WireError::BadStartLine)?;
    let body = read_body(&headers, body_bytes)?;
    Ok(Response {
        status: StatusCode(code),
        version,
        headers,
        body,
    })
}

fn parse_version(s: &str) -> Result<Version, WireError> {
    match s {
        "HTTP/1.0" => Ok(Version::Http10),
        "HTTP/1.1" => Ok(Version::Http11),
        _ => Err(WireError::BadStartLine),
    }
}

/// Split raw bytes into (start line, headers, body bytes).
fn split_message(data: &[u8]) -> Result<(String, HeaderMap, &[u8]), WireError> {
    let header_end = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(WireError::Truncated)?;
    let head = std::str::from_utf8(&data[..header_end]).map_err(|_| WireError::BadHeader)?;
    let body = &data[header_end + 4..];

    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(WireError::BadStartLine)?.to_string();
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(WireError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(WireError::BadHeader);
        }
        headers.append(name, value.trim());
    }
    Ok((start, headers, body))
}

fn read_body(headers: &HeaderMap, body_bytes: &[u8]) -> Result<Body, WireError> {
    let content_type = headers.get("Content-Type").map(|s| s.to_string());
    let bytes = if headers
        .get("Transfer-Encoding")
        .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
    {
        dechunk_body(body_bytes)?
    } else if let Some(cl) = headers.get("Content-Length") {
        let len: usize = cl.parse().map_err(|_| WireError::BadHeader)?;
        if body_bytes.len() < len {
            return Err(WireError::Truncated);
        }
        body_bytes[..len].to_vec()
    } else {
        body_bytes.to_vec()
    };
    Ok(Body {
        bytes,
        content_type,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Body, Request, Response};
    use crate::url::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = Request::post(
            url("https://api.example.com/v1/login?src=app"),
            Body::form(&[("user", "jane"), ("password", "s3cret!")]),
        )
        .with_user_agent("ExampleApp/3.2 (Android 4.4)");
        let bytes = serialize_request(&req);
        let parsed = parse_request(&bytes, true).unwrap();
        assert_eq!(parsed.method, req.method);
        assert_eq!(parsed.url, req.url);
        assert_eq!(parsed.body.bytes, req.body.bytes);
        assert_eq!(
            parsed.headers.get("User-Agent"),
            Some("ExampleApp/3.2 (Android 4.4)")
        );
    }

    #[test]
    fn response_roundtrip_plain() {
        let mut resp = Response::ok(Body::json(r#"{"ok":true}"#));
        resp.headers.set("Server", "nginx");
        let bytes = serialize_response(&resp);
        let parsed = parse_response(&bytes).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body.bytes, resp.body.bytes);
    }

    #[test]
    fn response_roundtrip_chunked() {
        let payload = vec![b'x'; 5000];
        let mut resp = Response::new(StatusCode::OK);
        resp.body = Body::binary(payload.clone(), "application/octet-stream");
        resp.headers.set("Content-Type", "application/octet-stream");
        resp.headers.set("Transfer-Encoding", "chunked");
        let bytes = serialize_response(&resp);
        let parsed = parse_response(&bytes).unwrap();
        assert_eq!(parsed.body.bytes, payload);
    }

    #[test]
    fn chunk_dechunk_roundtrip_edge_sizes() {
        for size in [1usize, 2, 3, 1024] {
            let body: Vec<u8> = (0..=255u8).cycle().take(2500).collect();
            let chunked = chunk_body(&body, size);
            assert_eq!(dechunk_body(&chunked).unwrap(), body);
        }
        assert_eq!(dechunk_body(&chunk_body(b"", 16)).unwrap(), b"");
    }

    #[test]
    fn dechunk_rejects_bad_framing() {
        assert_eq!(
            dechunk_body(b"zz\r\nxx\r\n0\r\n\r\n"),
            Err(WireError::BadChunk)
        );
        assert_eq!(dechunk_body(b"5\r\nab"), Err(WireError::Truncated));
        assert_eq!(dechunk_body(b"nothing here"), Err(WireError::BadChunk));
    }

    #[test]
    fn parse_request_requires_host() {
        let raw = b"GET /x HTTP/1.1\r\n\r\n";
        assert!(parse_request(raw, false).is_err());
    }

    #[test]
    fn parse_scheme_follows_connection_security() {
        let raw = b"GET /p HTTP/1.1\r\nHost: example.com\r\n\r\n";
        assert!(!parse_request(raw, true).unwrap().url.is_plaintext());
        assert!(parse_request(raw, false).unwrap().url.is_plaintext());
    }

    #[test]
    fn truncated_content_length_detected() {
        let raw = b"POST /p HTTP/1.1\r\nHost: a.com\r\nContent-Length: 10\r\n\r\nshort";
        assert_eq!(parse_request(raw, false), Err(WireError::Truncated));
    }

    #[test]
    fn bad_header_line_detected() {
        let raw = b"GET / HTTP/1.1\r\nHost: a.com\r\nBadHeaderNoColon\r\n\r\n";
        assert_eq!(parse_request(raw, false), Err(WireError::BadHeader));
    }
}
