//! Browser HTTP cache (freshness + ETag revalidation).
//!
//! Web sessions fetch each ad tag's JavaScript once, not once per page —
//! because browsers cache. The study's flow counts depend on that
//! behaviour, so the browser model carries a real cache: `Cache-Control:
//! max-age` freshness, `ETag`/`If-None-Match` revalidation, and `304 Not
//! Modified` handling. Like the cookie jar, the cache is per-session
//! (private-mode browsing starts cold and is discarded afterwards).

use crate::message::{Request, Response};
use std::collections::BTreeMap;

/// What the cache says about a pending request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheAdvice {
    /// Entry is fresh: serve locally, no network traffic at all.
    Fresh,
    /// Entry is stale but has a validator: send a conditional request
    /// with this `If-None-Match` value.
    Revalidate(String),
    /// Nothing usable: fetch normally.
    Miss,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    etag: Option<String>,
    stored_at_ms: u64,
    max_age_ms: Option<u64>,
    body_size: usize,
}

/// A per-session browser cache keyed by absolute URL.
#[derive(Clone, Debug, Default)]
pub struct BrowserCache {
    entries: BTreeMap<String, CacheEntry>,
    /// Requests served without any network use.
    pub fresh_hits: u64,
    /// Conditional requests answered 304.
    pub revalidations: u64,
}

/// Parse `max-age` out of a `Cache-Control` header value.
fn parse_max_age(value: &str) -> Option<u64> {
    for directive in value.split(',') {
        let directive = directive.trim().to_ascii_lowercase();
        if let Some(seconds) = directive.strip_prefix("max-age=") {
            return seconds.parse::<u64>().ok();
        }
        if directive == "no-store" || directive == "no-cache" {
            return None;
        }
    }
    None
}

impl BrowserCache {
    /// An empty (cold, private-mode) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the cache about `url` at time `now_ms`.
    pub fn advise(&mut self, url: &str, now_ms: u64) -> CacheAdvice {
        let Some(entry) = self.entries.get(url) else {
            return CacheAdvice::Miss;
        };
        if let Some(max_age) = entry.max_age_ms {
            if now_ms.saturating_sub(entry.stored_at_ms) <= max_age {
                self.fresh_hits += 1;
                return CacheAdvice::Fresh;
            }
        }
        match &entry.etag {
            Some(etag) => CacheAdvice::Revalidate(etag.clone()),
            None => CacheAdvice::Miss,
        }
    }

    /// Decorate an outgoing request according to prior advice (adds
    /// `If-None-Match` for revalidations).
    pub fn apply(&self, req: &mut Request, advice: &CacheAdvice) {
        if let CacheAdvice::Revalidate(etag) = advice {
            req.headers.set("If-None-Match", etag.clone());
        }
    }

    /// Record a response for `url` received at `now_ms`. A `304` renews
    /// the existing entry's freshness; a `200` with cache headers stores
    /// a new entry; `no-store` responses evict.
    pub fn store(&mut self, url: &str, resp: &Response, now_ms: u64) {
        if resp.status.0 == 304 {
            if let Some(entry) = self.entries.get_mut(url) {
                entry.stored_at_ms = now_ms;
                self.revalidations += 1;
            }
            return;
        }
        let cache_control = resp.headers.get("Cache-Control").unwrap_or("");
        if cache_control.to_ascii_lowercase().contains("no-store") {
            self.entries.remove(url);
            return;
        }
        let max_age_ms = parse_max_age(cache_control).map(|s| s * 1000);
        let etag = resp.headers.get("ETag").map(|s| s.to_string());
        if max_age_ms.is_none() && etag.is_none() {
            return; // uncacheable
        }
        self.entries.insert(
            url.to_string(),
            CacheEntry {
                etag,
                stored_at_ms: now_ms,
                max_age_ms,
                body_size: resp.body.len(),
            },
        );
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of cached bodies (diagnostics).
    pub fn stored_bytes(&self) -> usize {
        self.entries.values().map(|e| e.body_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Body, StatusCode};
    use crate::url::Url;

    fn cacheable(max_age: u64, etag: &str) -> Response {
        let mut r = Response::ok(Body::binary(vec![b'x'; 100], "application/javascript"));
        r.headers
            .set("Cache-Control", format!("public, max-age={max_age}"));
        r.headers.set("ETag", etag.to_string());
        r
    }

    #[test]
    fn miss_then_fresh_then_revalidate() {
        let mut cache = BrowserCache::new();
        let url = "https://t.example/adjs/ga.js";
        assert_eq!(cache.advise(url, 0), CacheAdvice::Miss);
        cache.store(url, &cacheable(60, "\"v1\""), 0);
        // Within max-age: fresh, no network.
        assert_eq!(cache.advise(url, 59_000), CacheAdvice::Fresh);
        assert_eq!(cache.fresh_hits, 1);
        // Past max-age: revalidate with the ETag.
        assert_eq!(
            cache.advise(url, 61_000),
            CacheAdvice::Revalidate("\"v1\"".into())
        );
    }

    #[test]
    fn not_modified_renews_freshness() {
        let mut cache = BrowserCache::new();
        let url = "https://t.example/x.js";
        cache.store(url, &cacheable(10, "\"e\""), 0);
        assert!(matches!(
            cache.advise(url, 20_000),
            CacheAdvice::Revalidate(_)
        ));
        cache.store(url, &Response::new(StatusCode(304)), 20_000);
        assert_eq!(cache.revalidations, 1);
        assert_eq!(cache.advise(url, 25_000), CacheAdvice::Fresh);
    }

    #[test]
    fn conditional_request_carries_etag() {
        let cache = BrowserCache::new();
        let mut req = Request::get(Url::parse("https://t.example/x.js").unwrap());
        cache.apply(&mut req, &CacheAdvice::Revalidate("\"abc\"".into()));
        assert_eq!(req.headers.get("If-None-Match"), Some("\"abc\""));
    }

    #[test]
    fn no_store_is_never_cached() {
        let mut cache = BrowserCache::new();
        let url = "https://t.example/private";
        let mut r = Response::ok(Body::text("secret"));
        r.headers.set("Cache-Control", "no-store");
        cache.store(url, &r, 0);
        assert!(cache.is_empty());
        assert_eq!(cache.advise(url, 1), CacheAdvice::Miss);
    }

    #[test]
    fn uncacheable_responses_are_ignored() {
        let mut cache = BrowserCache::new();
        cache.store("https://a/b", &Response::ok(Body::text("x")), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn etag_only_entries_always_revalidate() {
        let mut cache = BrowserCache::new();
        let url = "https://t.example/e";
        let mut r = Response::ok(Body::text("x"));
        r.headers.set("ETag", "\"only\"");
        cache.store(url, &r, 0);
        assert!(matches!(cache.advise(url, 1), CacheAdvice::Revalidate(_)));
    }

    #[test]
    fn diagnostics() {
        let mut cache = BrowserCache::new();
        cache.store("https://a/1", &cacheable(60, "\"1\""), 0);
        cache.store("https://a/2", &cacheable(60, "\"2\""), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stored_bytes(), 200);
    }
}

// CacheAdvice carries a payload variant, so its JSON impls are written by
// hand in serde's externally-tagged shape: `"Fresh"`, `{"Revalidate": e}`.
// lint:allow(R2) impl_json! has no payload-enum form; shape reviewed against convert.rs
impl appvsweb_json::ToJson for CacheAdvice {
    fn to_json(&self) -> appvsweb_json::Json {
        use appvsweb_json::Json;
        match self {
            CacheAdvice::Fresh => Json::Str("Fresh".to_string()),
            CacheAdvice::Miss => Json::Str("Miss".to_string()),
            CacheAdvice::Revalidate(etag) => {
                Json::Obj(vec![("Revalidate".to_string(), Json::Str(etag.clone()))])
            }
        }
    }
}

// lint:allow(R2) impl_json! has no payload-enum form; shape reviewed against convert.rs
impl appvsweb_json::FromJson for CacheAdvice {
    fn from_json(v: &appvsweb_json::Json) -> Result<Self, appvsweb_json::JsonError> {
        use appvsweb_json::{Json, JsonError};
        if let Json::Obj(entries) = v {
            if let [(key, payload)] = entries.as_slice() {
                if key == "Revalidate" {
                    return Ok(CacheAdvice::Revalidate(appvsweb_json::FromJson::from_json(
                        payload,
                    )?));
                }
            }
        }
        match v {
            Json::Str(s) if s == "Fresh" => Ok(CacheAdvice::Fresh),
            Json::Str(s) if s == "Miss" => Ok(CacheAdvice::Miss),
            other => Err(JsonError::schema(format!(
                "expected CacheAdvice, got {}",
                other.kind()
            ))),
        }
    }
}

appvsweb_json::impl_json!(struct CacheEntry { etag, stored_at_ms, max_age_ms, body_size });
appvsweb_json::impl_json!(struct BrowserCache { entries, fresh_hits, revalidations });
