//! # appvsweb-httpsim
//!
//! A self-contained HTTP/1.1 message substrate for the `appvsweb`
//! reproduction of *"Should You Use the App for That?"* (IMC 2016).
//!
//! The paper's measurement pipeline operates on decrypted HTTP flows
//! captured by a Meddle VPN + mitmproxy testbed. This crate provides the
//! pieces of HTTP that pipeline needs, implemented from scratch:
//!
//! * [`Url`] parsing and formatting, with query-string handling
//! * percent-encoding / `application/x-www-form-urlencoded` codecs and a
//!   small base64/hex codec zoo shared by the PII encoder layer
//!   ([`codec`])
//! * DEFLATE/gzip compression ([`compress`]) — SDK batch uploads travel
//!   gzipped, and the interception proxy must inflate them before any
//!   PII detection can see inside
//! * an ordered, case-insensitive [`HeaderMap`]
//! * cookies ([`cookie`]): `Cookie` request headers and `Set-Cookie`
//!   response headers, plus a [`cookie::CookieJar`]
//! * a browser cache ([`cache`]): `Cache-Control` freshness and
//!   `ETag`/`304` revalidation, which is why ad-tag JavaScript is
//!   fetched once per session rather than once per page
//! * [`Request`] / [`Response`] message types with body/content-type
//!   helpers
//! * HTTP/1.1 wire (de)serialization including chunked transfer encoding
//!   ([`wire`])
//! * deterministic response corruption for the fault-injection layer
//!   ([`degrade`]): 5xx substitution, truncated bodies, malformed
//!   chunked framing, and the [`degrade::is_partial`] detector the
//!   proxy uses to flag damaged-but-kept flows
//!
//! Everything is deterministic and allocation-friendly; there is no I/O in
//! this crate. Higher layers (`netsim`, `mitm`) move these messages across
//! the simulated network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod compress;
pub mod cookie;
pub mod degrade;
pub mod fuzz;
pub mod headers;
pub mod message;
pub mod url;
pub mod wire;

pub use cookie::{Cookie, CookieJar, SetCookie};
pub use headers::HeaderMap;
pub use message::{Body, Method, Request, Response, StatusCode, Version};
pub use url::{Host, Url};
