//! URL parsing and formatting.
//!
//! A deliberately small URL model covering what mobile apps and Web sites
//! actually emit in the study's traffic: `http`/`https` scheme, host,
//! optional port, path, and query string. Fragments are parsed but never
//! transmitted (they stay client-side, as in real browsers).

use crate::codec::{form_urldecode, form_urlencode, percent_encode};
use std::fmt;

/// A hostname (always lowercase) — the simulation does not use IP literals
/// at the HTTP layer, mirroring the paper's domain-level analysis.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Host(String);

impl Host {
    /// Create a host, lowercasing it.
    pub fn new(name: impl AsRef<str>) -> Self {
        Host(name.as_ref().to_ascii_lowercase())
    }

    /// The host name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The registrable domain (approximate eTLD+1): the last two labels,
    /// or three for well-known second-level public suffixes such as
    /// `co.uk`. Good enough for the paper's first-party association.
    ///
    /// ```
    /// use appvsweb_httpsim::Host;
    /// assert_eq!(Host::new("ads.g.doubleclick.net").registrable_domain(), "doubleclick.net");
    /// assert_eq!(Host::new("news.bbc.co.uk").registrable_domain(), "bbc.co.uk");
    /// ```
    pub fn registrable_domain(&self) -> String {
        let labels: Vec<&str> = self.0.split('.').collect();
        if labels.len() <= 2 {
            return self.0.clone();
        }
        let n = labels.len();
        let last_two = format!("{}.{}", labels[n - 2], labels[n - 1]);
        const SECOND_LEVEL_SUFFIXES: &[&str] = &[
            "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au", "org.au", "co.jp", "ne.jp",
            "or.jp", "com.br", "com.cn", "com.mx", "co.in", "co.nz", "co.kr",
        ];
        if SECOND_LEVEL_SUFFIXES.contains(&last_two.as_str()) && n >= 3 {
            format!("{}.{}", labels[n - 3], last_two)
        } else {
            last_two
        }
    }

    /// The second-level label of the registrable domain — e.g.
    /// `"google-analytics"` for `www.google-analytics.com`. The paper's
    /// Table 2 lists A&A domains "absent their top-level domain" in this
    /// form.
    pub fn organization_label(&self) -> String {
        let reg = self.registrable_domain();
        reg.split('.').next().unwrap_or(&reg).to_string()
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Host {
    fn from(s: &str) -> Self {
        Host::new(s)
    }
}

/// URL scheme; the study only observes web traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plaintext HTTP — anything PII-bearing here is a leak by rule (1).
    Http,
    /// TLS-protected HTTP.
    Https,
}

impl Scheme {
    /// Default TCP port for the scheme.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme text as it appears before `://`.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed URL.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: Scheme,
    /// Hostname (lowercased).
    pub host: Host,
    /// Explicit port, if any.
    pub port: Option<u16>,
    /// Path starting with `/` (normalized to `/` when absent).
    pub path: String,
    /// Raw query string without the leading `?`, if present.
    pub query: Option<String>,
}

/// Error from [`Url::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UrlError {
    /// The scheme was missing or not http/https.
    BadScheme,
    /// No host present.
    MissingHost,
    /// Port did not parse as u16.
    BadPort,
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::BadScheme => f.write_str("missing or unsupported scheme"),
            UrlError::MissingHost => f.write_str("missing host"),
            UrlError::BadPort => f.write_str("invalid port"),
        }
    }
}

impl std::error::Error for UrlError {}

impl Url {
    /// Parse an absolute http(s) URL.
    ///
    /// ```
    /// use appvsweb_httpsim::Url;
    /// let u = Url::parse("https://api.weather.com:8443/v2/geo?lat=42.36&lon=-71.05#top").unwrap();
    /// assert_eq!(u.host.as_str(), "api.weather.com");
    /// assert_eq!(u.port, Some(8443));
    /// assert_eq!(u.path, "/v2/geo");
    /// assert_eq!(u.query.as_deref(), Some("lat=42.36&lon=-71.05"));
    /// ```
    pub fn parse(input: &str) -> Result<Self, UrlError> {
        let (scheme, rest) = if let Some(rest) = input.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = input.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else {
            return Err(UrlError::BadScheme);
        };

        // Strip the fragment first: it is never sent on the wire.
        let rest = rest.split('#').next().unwrap_or(rest);

        let (authority, path_query) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => match rest.find('?') {
                Some(idx) => (&rest[..idx], &rest[idx..]),
                None => (rest, ""),
            },
        };
        if authority.is_empty() {
            return Err(UrlError::MissingHost);
        }
        // Ignore userinfo if present (rare, but keeps parsing total).
        let authority = authority.rsplit('@').next().unwrap_or(authority);
        let (host, port) = match authority.split_once(':') {
            Some((h, p)) => {
                let port = p.parse::<u16>().map_err(|_| UrlError::BadPort)?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if host.is_empty() {
            return Err(UrlError::MissingHost);
        }

        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p, Some(q.to_string())),
            None => (path_query, None),
        };
        let path = if path.is_empty() {
            "/".to_string()
        } else {
            path.to_string()
        };

        Ok(Url {
            scheme,
            host: Host::new(host),
            port,
            path,
            query,
        })
    }

    /// Build a URL from parts with no query.
    pub fn new(scheme: Scheme, host: impl AsRef<str>, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            scheme,
            host: Host::new(host),
            port: None,
            path,
            query: None,
        }
    }

    /// Replace the query with encoded key/value pairs.
    pub fn with_query(mut self, pairs: &[(&str, &str)]) -> Self {
        self.query = if pairs.is_empty() {
            None
        } else {
            Some(form_urlencode(pairs))
        };
        self
    }

    /// Append one encoded key/value pair to the query.
    pub fn push_query(&mut self, key: &str, value: &str) {
        let piece = format!(
            "{}={}",
            percent_encode(key).replace("%20", "+"),
            percent_encode(value).replace("%20", "+")
        );
        match &mut self.query {
            Some(q) if !q.is_empty() => {
                q.push('&');
                q.push_str(&piece);
            }
            _ => self.query = Some(piece),
        }
    }

    /// Decode the query into key/value pairs (empty if no query).
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        self.query
            .as_deref()
            .map(form_urldecode)
            .unwrap_or_default()
    }

    /// The effective TCP port (explicit, or the scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or_else(|| self.scheme.default_port())
    }

    /// Path plus query, as sent in the HTTP request line.
    pub fn request_target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// `true` if this URL uses plaintext HTTP.
    pub fn is_plaintext(&self) -> bool {
        self.scheme == Scheme::Http
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme.as_str(), self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.scheme, Scheme::Http);
        assert_eq!(u.path, "/");
        assert_eq!(u.query, None);
        assert_eq!(u.effective_port(), 80);
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert_eq!(Url::parse("ftp://x.com"), Err(UrlError::BadScheme));
        assert_eq!(Url::parse("https://"), Err(UrlError::MissingHost));
        assert_eq!(
            Url::parse("https://x.com:notaport/"),
            Err(UrlError::BadPort)
        );
    }

    #[test]
    fn parse_query_without_path() {
        let u = Url::parse("https://t.co?x=1").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.query.as_deref(), Some("x=1"));
    }

    #[test]
    fn fragment_is_dropped() {
        let u = Url::parse("https://a.com/p?q=1#frag").unwrap();
        assert_eq!(u.query.as_deref(), Some("q=1"));
        assert!(!u.to_string().contains('#'));
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "https://api.example.com/v1/users?id=42&x=a+b",
            "http://cdn.example.org:8080/asset.js",
            "https://example.com/",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(u.to_string(), *s);
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn push_query_appends() {
        let mut u = Url::new(Scheme::Https, "Example.COM", "track");
        assert_eq!(u.host.as_str(), "example.com");
        assert_eq!(u.path, "/track");
        u.push_query("idfa", "AAAA-BBBB");
        u.push_query("loc", "42.3601,-71.0589");
        let pairs = u.query_pairs();
        assert_eq!(pairs[0].0, "idfa");
        assert_eq!(pairs[1].1, "42.3601,-71.0589");
    }

    #[test]
    fn registrable_domain_cases() {
        assert_eq!(Host::new("weather.com").registrable_domain(), "weather.com");
        assert_eq!(
            Host::new("a.b.c.weather.com").registrable_domain(),
            "weather.com"
        );
        assert_eq!(Host::new("localhost").registrable_domain(), "localhost");
        assert_eq!(Host::new("news.bbc.co.uk").organization_label(), "bbc");
        assert_eq!(
            Host::new("ssl.google-analytics.com").organization_label(),
            "google-analytics"
        );
    }
}

appvsweb_json::impl_json!(newtype Host(String));
appvsweb_json::impl_json!(
    enum Scheme {
        Http,
        Https,
    }
);
appvsweb_json::impl_json!(struct Url { scheme, host, port, path, query });
