//! Deterministic response corruption for fault injection.
//!
//! The chaos layer (see `netsim::faults`) decides *when* a response is
//! damaged; this module decides *what the damage looks like* at the HTTP
//! level. Three corruptions mirror what the 2016 capture rigs actually
//! saw from flaky origins and middleboxes:
//!
//! * a 5xx error page replacing the real payload ([`server_error`]),
//! * a body cut short of its declared `Content-Length` ([`truncate`]),
//! * chunked transfer encoding whose framing never terminates
//!   ([`malform_chunked`]).
//!
//! [`is_partial`] is the read side: the proxy calls it on every recorded
//! response so damaged exchanges are *kept and flagged* rather than
//! silently dropped — partial captures still carry leaks.
//!
//! Convention: an intact `Response` carries a plain (unframed) body even
//! when `Transfer-Encoding: chunked` is set — the wire serializer frames
//! it on the way out. [`malform_chunked`] deliberately breaks that
//! invariant by storing pre-framed, unterminated chunk bytes, which is
//! exactly what [`is_partial`] detects.

use crate::message::{Body, Response, StatusCode};
use crate::wire;

/// Build a 5xx error response in place of the real payload. `code` is
/// clamped into the 5xx range (anything outside becomes 503, the code
/// overloaded 2016 CDNs handed out most).
pub fn server_error(code: u16) -> Response {
    let status = if (500..=599).contains(&code) {
        StatusCode(code)
    } else {
        StatusCode(503)
    };
    appvsweb_obs::counter!("httpsim.degraded_responses");
    appvsweb_obs::event!("http.degrade", "server_error {}", status.0);
    let mut resp = Response::new(status);
    resp.set_body(Body::binary(
        format!(
            "<html><head><title>{c}</title></head><body><h1>{c} {r}</h1></body></html>",
            c = status.0,
            r = status.reason(),
        )
        .into_bytes(),
        "text/html",
    ));
    resp
}

/// Cut the body short of its declared `Content-Length`, as when an
/// origin or middlebox drops the connection mid-transfer. The header
/// keeps advertising the full length, so [`is_partial`] (and any honest
/// wire parser) sees the mismatch. An empty body gains a phantom
/// declared byte so the truncation is still observable.
pub fn truncate(resp: &mut Response) {
    appvsweb_obs::counter!("httpsim.degraded_responses");
    appvsweb_obs::event!("http.degrade", "truncated_body");
    let full = resp.body.bytes.len();
    if full == 0 {
        resp.headers.set("Content-Length", "1");
        return;
    }
    resp.headers.set("Content-Length", full.to_string());
    resp.body.bytes.truncate(full / 2);
}

/// Re-frame the body as chunked transfer encoding and then lose the
/// terminating `0\r\n\r\n` (plus the tail of the final chunk) — the
/// classic symptom of a proxy hanging up before the last flight. The
/// stored body becomes the broken framed bytes themselves.
pub fn malform_chunked(resp: &mut Response) {
    appvsweb_obs::counter!("httpsim.degraded_responses");
    appvsweb_obs::event!("http.degrade", "malformed_chunked");
    let framed = wire::chunk_body(&resp.body.bytes, 512);
    let cut = framed.len().saturating_sub(7);
    resp.body.bytes = framed[..cut].to_vec();
    resp.headers.remove("Content-Length");
    resp.headers.set("Transfer-Encoding", "chunked");
}

/// Whether a response shows wire-level damage: a body shorter than its
/// declared `Content-Length`, or chunked framing that fails to decode.
/// Responses flagged here are recorded as partial flows, not discarded.
pub fn is_partial(resp: &Response) -> bool {
    if let Some(cl) = resp.headers.get("Content-Length") {
        if let Ok(declared) = cl.parse::<usize>() {
            if declared > resp.body.bytes.len() {
                return true;
            }
        }
    }
    if resp
        .headers
        .get("Transfer-Encoding")
        .is_some_and(|te| te.eq_ignore_ascii_case("chunked"))
        && wire::dechunk_body(&resp.body.bytes).is_err()
    {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Response {
        Response::ok(Body::binary(
            (0..n).map(|i| (i % 251) as u8).collect(),
            "application/octet-stream",
        ))
    }

    #[test]
    fn intact_responses_are_not_partial() {
        assert!(!is_partial(&payload(4096)));
        assert!(!is_partial(&Response::no_content()));
        assert!(!is_partial(&server_error(503)));
    }

    #[test]
    fn server_error_clamps_to_5xx() {
        assert_eq!(server_error(502).status, StatusCode(502));
        assert_eq!(server_error(200).status, StatusCode(503));
        assert_eq!(server_error(0).status, StatusCode(503));
        assert!(!server_error(500).body.is_empty());
    }

    #[test]
    fn truncate_is_detected() {
        let mut resp = payload(1000);
        truncate(&mut resp);
        assert_eq!(resp.body.bytes.len(), 500);
        assert_eq!(resp.headers.get("Content-Length"), Some("1000"));
        assert!(is_partial(&resp));

        let mut empty = Response::no_content();
        truncate(&mut empty);
        assert!(is_partial(&empty));
    }

    #[test]
    fn malformed_chunked_is_detected() {
        let mut resp = payload(2000);
        malform_chunked(&mut resp);
        assert!(resp.headers.get("Content-Length").is_none());
        assert!(is_partial(&resp));

        let mut empty = payload(0);
        malform_chunked(&mut empty);
        assert!(is_partial(&empty));
    }

    #[test]
    fn damage_survives_a_wire_round_trip() {
        // A damaged response that is serialized and re-parsed must still
        // read as partial — the PII pipeline re-parses recorded bytes.
        let mut resp = payload(1500);
        malform_chunked(&mut resp);
        let parsed = wire::parse_response(&wire::serialize_response(&resp)).unwrap();
        assert!(is_partial(&parsed));

        // Truncated content-length fails honest parsing outright, which
        // is equally "detected".
        let mut short = payload(1000);
        truncate(&mut short);
        assert!(wire::parse_response(&wire::serialize_response(&short)).is_err());
    }
}
