//! Cookies: `Cookie` request headers, `Set-Cookie` response headers, and a
//! client-side [`CookieJar`].
//!
//! Web-based tracking in the paper rests on cookie IDs and cookie matching
//! (§4.2, citing Bashir et al.), so the browser model needs a faithful
//! enough jar: domain/path scoping, host-only vs domain cookies,
//! and "private mode" semantics (the study browsed in private mode, so
//! each session starts with an empty jar that is discarded afterwards).

use std::fmt;

/// A single name=value cookie as sent in a `Cookie` request header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
}

impl Cookie {
    /// Create a cookie.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Cookie {
            name: name.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Parse a `Cookie` request header into individual cookies.
///
/// ```
/// use appvsweb_httpsim::cookie::parse_cookie_header;
/// let cookies = parse_cookie_header("sid=abc; _ga=GA1.2.123");
/// assert_eq!(cookies.len(), 2);
/// assert_eq!(cookies[1].name, "_ga");
/// ```
pub fn parse_cookie_header(value: &str) -> Vec<Cookie> {
    value
        .split(';')
        .filter_map(|part| {
            let part = part.trim();
            if part.is_empty() {
                return None;
            }
            match part.split_once('=') {
                Some((n, v)) => Some(Cookie::new(n.trim(), v.trim())),
                None => Some(Cookie::new(part, "")),
            }
        })
        .collect()
}

/// A parsed `Set-Cookie` response header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetCookie {
    /// The cookie being set.
    pub cookie: Cookie,
    /// `Domain` attribute (without leading dot), if present. Absent means
    /// host-only.
    pub domain: Option<String>,
    /// `Path` attribute; defaults to `/`.
    pub path: String,
    /// `Secure` attribute: only sent over HTTPS.
    pub secure: bool,
    /// `HttpOnly` attribute (informational; the jar always stores it).
    pub http_only: bool,
    /// `Max-Age` in seconds, if present. `Some(0)` or negative requests
    /// deletion.
    pub max_age: Option<i64>,
}

impl SetCookie {
    /// Build a simple session cookie header value.
    pub fn session(name: impl Into<String>, value: impl Into<String>) -> Self {
        SetCookie {
            cookie: Cookie::new(name, value),
            domain: None,
            path: "/".into(),
            secure: false,
            http_only: false,
            max_age: None,
        }
    }

    /// Set the `Domain` attribute (builder style).
    pub fn with_domain(mut self, domain: impl Into<String>) -> Self {
        self.domain = Some(domain.into().trim_start_matches('.').to_ascii_lowercase());
        self
    }

    /// Parse a `Set-Cookie` header value. Returns `None` for headers with
    /// no `name=value` first segment.
    pub fn parse(header: &str) -> Option<Self> {
        let mut parts = header.split(';');
        let first = parts.next()?.trim();
        let (name, value) = first.split_once('=')?;
        let mut sc = SetCookie::session(name.trim(), value.trim());
        for attr in parts {
            let attr = attr.trim();
            let (key, val) = match attr.split_once('=') {
                Some((k, v)) => (k.trim().to_ascii_lowercase(), v.trim()),
                None => (attr.to_ascii_lowercase(), ""),
            };
            match key.as_str() {
                "domain" => {
                    sc.domain = Some(val.trim_start_matches('.').to_ascii_lowercase().to_string())
                }
                "path" if !val.is_empty() => sc.path = val.to_string(),
                "secure" => sc.secure = true,
                "httponly" => sc.http_only = true,
                "max-age" => sc.max_age = val.parse::<i64>().ok(),
                _ => {}
            }
        }
        Some(sc)
    }

    /// Format as a `Set-Cookie` header value.
    pub fn to_header_value(&self) -> String {
        let mut s = self.cookie.to_string();
        if let Some(d) = &self.domain {
            s.push_str("; Domain=");
            s.push_str(d);
        }
        if self.path != "/" {
            s.push_str("; Path=");
            s.push_str(&self.path);
        }
        if let Some(ma) = self.max_age {
            s.push_str(&format!("; Max-Age={ma}"));
        }
        if self.secure {
            s.push_str("; Secure");
        }
        if self.http_only {
            s.push_str("; HttpOnly");
        }
        s
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct StoredCookie {
    set: SetCookie,
    /// The request host that stored the cookie (for host-only matching).
    origin_host: String,
}

/// A client-side cookie jar with domain/path matching.
///
/// The study's methodology browses in *private mode*: construct a fresh
/// jar per session and drop it at the end, which is exactly how the
/// browser model uses this type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CookieJar {
    cookies: Vec<StoredCookie>,
}

impl CookieJar {
    /// Create an empty jar (a fresh private-mode session).
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a cookie set by `origin_host`. Replaces any cookie with the
    /// same (name, effective domain, path). A non-positive `Max-Age`
    /// removes the cookie.
    pub fn store(&mut self, origin_host: &str, set: SetCookie) {
        let origin_host = origin_host.to_ascii_lowercase();
        // Reject cookies whose Domain attribute is not a suffix of the
        // origin host (a cross-domain set attempt), as browsers do.
        if let Some(d) = &set.domain {
            if !domain_matches(&origin_host, d) {
                return;
            }
        }
        fn key(c: &StoredCookie) -> (&str, &str, &str) {
            (
                &c.set.cookie.name,
                c.set.domain.as_deref().unwrap_or(&c.origin_host),
                &c.set.path,
            )
        }
        let new = StoredCookie {
            set,
            origin_host: origin_host.clone(),
        };
        let new_key = key(&new);
        self.cookies.retain(|c| key(c) != new_key);
        if new.set.max_age.is_none_or(|ma| ma > 0) {
            self.cookies.push(new);
        }
    }

    /// Cookies to attach to a request for `host` + `path` over the given
    /// scheme security (`secure_channel` = HTTPS).
    pub fn matching(&self, host: &str, path: &str, secure_channel: bool) -> Vec<Cookie> {
        // Hosts are almost always lowercase already; only allocate when
        // the fold actually changes something.
        let host: std::borrow::Cow<'_, str> = if host.bytes().any(|b| b.is_ascii_uppercase()) {
            host.to_ascii_lowercase().into()
        } else {
            host.into()
        };
        self.cookies
            .iter()
            .filter(|c| {
                let domain_ok = match &c.set.domain {
                    Some(d) => domain_matches(&host, d),
                    None => host.as_ref() == c.origin_host,
                };
                let path_ok = path_matches(path, &c.set.path);
                let secure_ok = !c.set.secure || secure_channel;
                domain_ok && path_ok && secure_ok
            })
            .map(|c| c.set.cookie.clone())
            .collect()
    }

    /// Render a `Cookie` header value for a request, or `None` when no
    /// cookies match.
    pub fn cookie_header(&self, host: &str, path: &str, secure_channel: bool) -> Option<String> {
        let cookies = self.matching(host, path, secure_channel);
        if cookies.is_empty() {
            return None;
        }
        Some(
            cookies
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// Whether the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }
}

/// RFC 6265 domain-match: `host` equals `domain` or is a dot-separated
/// subdomain of it.
fn domain_matches(host: &str, domain: &str) -> bool {
    host == domain
        || (host.len() > domain.len()
            && host.ends_with(domain)
            && host.as_bytes()[host.len() - domain.len() - 1] == b'.')
}

/// RFC 6265 path-match (prefix with `/` boundary).
fn path_matches(request_path: &str, cookie_path: &str) -> bool {
    request_path == cookie_path
        || (request_path.starts_with(cookie_path)
            && (cookie_path.ends_with('/')
                || request_path.as_bytes().get(cookie_path.len()) == Some(&b'/')))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_set_cookie_attributes() {
        let sc = SetCookie::parse(
            "_ga=GA1.2.99; Domain=.example.com; Path=/; Secure; HttpOnly; Max-Age=3600",
        )
        .unwrap();
        assert_eq!(sc.cookie.name, "_ga");
        assert_eq!(sc.domain.as_deref(), Some("example.com"));
        assert!(sc.secure && sc.http_only);
        assert_eq!(sc.max_age, Some(3600));
    }

    #[test]
    fn parse_rejects_attribute_only() {
        assert!(SetCookie::parse("Secure; HttpOnly").is_none());
    }

    #[test]
    fn jar_host_only_vs_domain_cookie() {
        let mut jar = CookieJar::new();
        jar.store("www.example.com", SetCookie::session("hostonly", "1"));
        jar.store(
            "www.example.com",
            SetCookie::session("domainwide", "2").with_domain("example.com"),
        );
        // Host-only cookie is not sent to a sibling subdomain.
        let sib = jar.matching("api.example.com", "/", true);
        assert_eq!(sib.len(), 1);
        assert_eq!(sib[0].name, "domainwide");
        // Both are sent back to the origin host.
        assert_eq!(jar.matching("www.example.com", "/", true).len(), 2);
    }

    #[test]
    fn jar_rejects_cross_domain_set() {
        let mut jar = CookieJar::new();
        jar.store(
            "evil.com",
            SetCookie::session("x", "1").with_domain("bank.com"),
        );
        assert!(jar.is_empty());
    }

    #[test]
    fn jar_secure_cookie_needs_https() {
        let mut jar = CookieJar::new();
        let mut sc = SetCookie::session("sid", "s3cret");
        sc.secure = true;
        jar.store("example.com", sc);
        assert!(jar.matching("example.com", "/", false).is_empty());
        assert_eq!(jar.matching("example.com", "/", true).len(), 1);
    }

    #[test]
    fn jar_path_scoping() {
        let mut jar = CookieJar::new();
        let mut sc = SetCookie::session("p", "1");
        sc.path = "/account".into();
        jar.store("example.com", sc);
        assert!(jar.matching("example.com", "/", true).is_empty());
        assert_eq!(jar.matching("example.com", "/account", true).len(), 1);
        assert_eq!(
            jar.matching("example.com", "/account/settings", true).len(),
            1
        );
        assert!(jar.matching("example.com", "/accounting", true).is_empty());
    }

    #[test]
    fn jar_replaces_and_deletes() {
        let mut jar = CookieJar::new();
        jar.store("a.com", SetCookie::session("k", "v1"));
        jar.store("a.com", SetCookie::session("k", "v2"));
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.matching("a.com", "/", true)[0].value, "v2");
        let mut del = SetCookie::session("k", "");
        del.max_age = Some(0);
        jar.store("a.com", del);
        assert!(jar.is_empty());
    }

    #[test]
    fn cookie_header_rendering() {
        let mut jar = CookieJar::new();
        jar.store("a.com", SetCookie::session("a", "1"));
        jar.store("a.com", SetCookie::session("b", "2"));
        let hdr = jar.cookie_header("a.com", "/", true).unwrap();
        assert_eq!(hdr, "a=1; b=2");
        assert!(jar.cookie_header("other.com", "/", true).is_none());
    }

    #[test]
    fn roundtrip_header_value() {
        let sc = SetCookie::parse("id=42; Domain=x.com; Max-Age=5; Secure").unwrap();
        let reparsed = SetCookie::parse(&sc.to_header_value()).unwrap();
        assert_eq!(sc, reparsed);
    }
}

appvsweb_json::impl_json!(struct Cookie { name, value });
appvsweb_json::impl_json!(struct SetCookie { cookie, domain, path, secure, http_only, max_age });
appvsweb_json::impl_json!(struct StoredCookie { set, origin_host });
appvsweb_json::impl_json!(struct CookieJar { cookies });
