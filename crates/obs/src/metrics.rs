//! Process-wide counters and fixed-bucket histograms.
//!
//! Each [`crate::counter!`]/[`crate::histogram!`] call site expands to a
//! `static` slot here. The first increment registers the slot in a
//! global registry (one mutex acquisition per call site per process);
//! every later increment is a single relaxed `fetch_add` — the same
//! discipline as `appvsweb-cover`'s hit map, and why the instrumented
//! hot path stays within the <3% overhead budget.
//!
//! [`snapshot`] aggregates slots by name (several call sites may share a
//! metric name) and returns name-sorted, JSON-serializable totals;
//! [`reset`] zeroes every registered slot so a run can be measured in
//! isolation. Values are process-wide and monotone between resets —
//! per-cell attribution lives in [`crate::journal`], not here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::journal::{bucket_index, BUCKETS};

/// A lazily registered process-wide counter (one per call site).
pub struct CounterSlot {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl CounterSlot {
    /// Const-construct a slot (used by the [`crate::counter!`] macro).
    pub const fn new(name: &'static str) -> CounterSlot {
        CounterSlot {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n`; registers the slot on first use.
    pub fn add(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed)
            && self
                .registered
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .counters
                .push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }
}

/// A lazily registered process-wide log2-bucket histogram.
pub struct HistogramSlot {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: AtomicBool,
}

impl HistogramSlot {
    /// Const-construct a slot (used by the [`crate::histogram!`] macro).
    pub const fn new(name: &'static str) -> HistogramSlot {
        HistogramSlot {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Record one value; registers the slot on first use.
    pub fn record(&'static self, v: u64) {
        if !self.registered.load(Ordering::Relaxed)
            && self
                .registered
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .histograms
                .push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(slot) = self.buckets.get(bucket_index(v)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct Registry {
    counters: Vec<&'static CounterSlot>,
    histograms: Vec<&'static HistogramSlot>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counters: Vec::new(),
        histograms: Vec::new(),
    });
    &REGISTRY
}

/// One aggregated counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Total across every call site sharing the name.
    pub value: u64,
}

/// One aggregated histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-log2-bucket counts (see [`crate::journal::bucket_index`]).
    pub buckets: Vec<u64>,
}

/// A point-in-time dump of the whole registry, name-sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

appvsweb_json::impl_json!(struct CounterSnapshot { name, value });
appvsweb_json::impl_json!(struct HistogramSnapshot { name, count, sum, buckets });
appvsweb_json::impl_json!(struct MetricsSnapshot { counters, histograms });

impl MetricsSnapshot {
    /// Look up a counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }
}

/// Aggregate every registered slot by name.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    for slot in &reg.counters {
        *counters.entry(slot.name).or_insert(0) += slot.value.load(Ordering::Relaxed);
    }
    let mut histograms: BTreeMap<&'static str, (u64, u64, Vec<u64>)> = BTreeMap::new();
    for slot in &reg.histograms {
        let entry = histograms
            .entry(slot.name)
            .or_insert_with(|| (0, 0, vec![0; BUCKETS]));
        entry.0 += slot.count.load(Ordering::Relaxed);
        entry.1 += slot.sum.load(Ordering::Relaxed);
        for (total, bucket) in entry.2.iter_mut().zip(slot.buckets.iter()) {
            *total += bucket.load(Ordering::Relaxed);
        }
    }
    MetricsSnapshot {
        counters: counters
            .into_iter()
            .map(|(name, value)| CounterSnapshot {
                name: name.to_string(),
                value,
            })
            .collect(),
        histograms: histograms
            .into_iter()
            .map(|(name, (count, sum, buckets))| HistogramSnapshot {
                name: name.to_string(),
                count,
                sum,
                buckets,
            })
            .collect(),
    }
}

/// Convenience: the current total of one counter.
pub fn counter_value(name: &str) -> u64 {
    snapshot().counter(name)
}

/// Zero every registered slot (slots stay registered).
pub fn reset() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for slot in &reg.counters {
        slot.value.store(0, Ordering::Relaxed);
    }
    for slot in &reg.histograms {
        slot.count.store(0, Ordering::Relaxed);
        slot.sum.store(0, Ordering::Relaxed);
        for bucket in slot.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; serialize tests that reset it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_aggregate_across_call_sites_and_reset() {
        let _lock = LOCK.lock().unwrap();
        reset();
        crate::counter!("test.metrics.shared");
        crate::counter!("test.metrics.shared", 4);
        let snap = snapshot();
        assert_eq!(snap.counter("test.metrics.shared"), 5);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        reset();
        assert_eq!(counter_value("test.metrics.shared"), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histograms_bucket_by_log2_and_round_trip_as_json() {
        let _lock = LOCK.lock().unwrap();
        reset();
        for v in [0u64, 1, 2, 3, 1024] {
            crate::histogram!("test.metrics.sizes", v);
        }
        let snap = snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.metrics.sizes")
            .expect("histogram registered");
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 1030);
        assert_eq!(hist.buckets.get(bucket_index(0)).copied(), Some(1));
        assert_eq!(hist.buckets.get(bucket_index(2)).copied(), Some(2));
        let text = appvsweb_json::encode(&snap);
        let back: MetricsSnapshot = appvsweb_json::decode(&text).expect("round trip");
        assert_eq!(back, snap);
        reset();
    }

    #[test]
    fn disabled_build_keeps_the_registry_empty() {
        let _lock = LOCK.lock().unwrap();
        if !crate::ENABLED {
            crate::counter!("test.metrics.never");
            assert_eq!(counter_value("test.metrics.never"), 0);
        }
    }
}
