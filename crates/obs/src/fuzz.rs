//! Fuzz entry point for the trace-journal codec.
//!
//! A differential target: fuzz bytes that decode as a [`StudyJournal`]
//! must re-encode to a byte-level fixed point (encode → decode →
//! encode is stable in both compact and pretty forms), and the span-tree
//! renderer must be total on whatever the decoder accepts — including
//! unbalanced span sequences that no real capture would produce (the
//! `regress-depth-underflow` corpus pin).

use crate::journal::{render_tree, StudyJournal};

/// Run the journal-codec target on raw fuzz bytes.
pub fn run(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let Ok(journal) = appvsweb_json::decode::<StudyJournal>(&text) else {
        return;
    };
    let compact = appvsweb_json::encode(&journal);
    let back: Result<StudyJournal, _> = appvsweb_json::decode(&compact);
    assert!(back.is_ok(), "re-encoded journal must reparse");
    let back = back.unwrap_or_default();
    assert_eq!(back, journal, "decode(encode(j)) must equal j");
    assert_eq!(
        appvsweb_json::encode(&back),
        compact,
        "compact journal encoding must reach a fixed point"
    );
    let pretty = appvsweb_json::encode_pretty(&journal);
    let repretty: Result<StudyJournal, _> = appvsweb_json::decode(&pretty);
    assert!(repretty.is_ok(), "pretty journal must reparse");
    assert_eq!(
        repretty.unwrap_or_default(),
        journal,
        "pretty and compact forms must agree"
    );
    // The renderer must be total on arbitrary decoded journals.
    for cell in &journal.cells {
        let tree = render_tree(cell);
        assert!(tree.starts_with("cell "), "render is deterministic prose");
    }
}

/// Dictionary: the journal's JSON vocabulary.
pub const DICT: &[&[u8]] = &[
    b"{\"cells\":[]}",
    b"\"cells\"",
    b"\"events\"",
    b"\"counters\"",
    b"\"histograms\"",
    b"\"seq\"",
    b"\"at_ms\"",
    b"\"kind\"",
    b"\"depth\"",
    b"\"name\"",
    b"\"detail\"",
    b"\"value\"",
    b"\"count\"",
    b"\"sum\"",
    b"\"buckets\"",
    b"\"SpanOpen\"",
    b"\"SpanClose\"",
    b"\"Event\"",
    b"\"cell\"",
];

/// Seeds: an empty journal, a one-cell journal with every entry kind,
/// and an unbalanced close-without-open journal (renderer totality).
pub const SEEDS: &[&[u8]] = &[
    b"{\"cells\":[]}",
    b"{\"cells\":[{\"cell\":\"svc/Android/App\",\"events\":[\
{\"seq\":0,\"at_ms\":5,\"kind\":\"SpanOpen\",\"depth\":0,\"name\":\"mitm.exchange\",\"detail\":\"GET a.example\"},\
{\"seq\":1,\"at_ms\":6,\"kind\":\"Event\",\"depth\":1,\"name\":\"dns.query\",\"detail\":\"a.example\"},\
{\"seq\":2,\"at_ms\":9,\"kind\":\"SpanClose\",\"depth\":0,\"name\":\"mitm.exchange\",\"detail\":\"\"}],\
\"counters\":[{\"name\":\"mitm.flows_opened\",\"value\":1}],\
\"histograms\":[{\"name\":\"h\",\"count\":1,\"sum\":2,\"buckets\":[0,0,1]}]}]}",
    b"{\"cells\":[{\"cell\":\"hostile\",\"events\":[\
{\"seq\":9,\"at_ms\":0,\"kind\":\"SpanClose\",\"depth\":0,\"name\":\"never-opened\",\"detail\":\"\"}],\
\"counters\":[],\"histograms\":[]}]}",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_survives_the_harness() {
        for seed in SEEDS {
            run(seed);
        }
    }

    #[test]
    fn structured_seeds_actually_decode() {
        for seed in SEEDS {
            let text = String::from_utf8_lossy(seed);
            assert!(
                appvsweb_json::decode::<StudyJournal>(&text).is_ok(),
                "seed must decode: {text}"
            );
        }
    }
}
