//! Per-cell event journals with deterministic `(cell, seq)` ordering.
//!
//! A worker thread wraps each unit of work (a study cell, a training
//! session) in a [`CellScope`]. While the scope is alive, every span,
//! event, counter and histogram increment fired on that thread is
//! recorded into the scope's private journal, keyed by a per-cell
//! monotone sequence number and stamped with the last value passed to
//! [`crate::stamp`] — simulated time, never the wall clock. When the
//! scope drops, the finished [`CellJournal`] is pushed into a global
//! sink; [`crate::capture_end`] drains the sink and sorts by cell id.
//!
//! Two properties fall out of this design:
//!
//! * **Worker-count independence.** A cell runs start-to-finish on one
//!   thread, so its journal depends only on the cell's own deterministic
//!   execution. Thread interleaving can only permute whole cells in the
//!   sink, and the final sort erases that. Nothing thread-identifying is
//!   ever journaled.
//! * **Balanced spans.** [`SpanGuard`] records the close in `Drop`, so a
//!   panic that unwinds through `catch_unwind` still closes every span
//!   opened inside the unwound closure, exactly once.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What a journal entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; the matching close carries the same name.
    SpanOpen,
    /// A span closed.
    SpanClose,
    /// A point event.
    Event,
}

/// One journal entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Per-cell monotone sequence number, starting at 0.
    pub seq: u64,
    /// Simulated milliseconds since the sim epoch (last [`crate::stamp`]).
    pub at_ms: u64,
    /// Entry kind.
    pub kind: EventKind,
    /// Span nesting depth at which the entry was recorded.
    pub depth: u64,
    /// Instrumentation-site name, e.g. `"mitm.exchange"`.
    pub name: String,
    /// Free-form detail text (empty when the site supplied none).
    pub detail: String,
}

/// A named counter total within one cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellCounter {
    /// Counter name.
    pub name: String,
    /// Sum of increments recorded while the cell's scope was active.
    pub value: u64,
}

/// A named histogram within one cell (log2 buckets, as in
/// [`crate::metrics`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellHistogram {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` holds values with `floor(log2)+1 == i`
    /// (bucket 0 is exactly zero), saturating in the last bucket.
    pub buckets: Vec<u64>,
}

/// The full journal of one cell (or training pseudo-cell).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellJournal {
    /// Cell id, e.g. `"weather-channel/Android/App"`.
    pub cell: String,
    /// Entries in `seq` order.
    pub events: Vec<Event>,
    /// Counter totals, sorted by name.
    pub counters: Vec<CellCounter>,
    /// Histograms, sorted by name.
    pub histograms: Vec<CellHistogram>,
}

/// A whole study capture: every cell journal, sorted by cell id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StudyJournal {
    /// Cell journals in cell-id order.
    pub cells: Vec<CellJournal>,
}

appvsweb_json::impl_json!(
    enum EventKind {
        SpanOpen,
        SpanClose,
        Event,
    }
);
appvsweb_json::impl_json!(struct Event { seq, at_ms, kind, depth, name, detail });
appvsweb_json::impl_json!(struct CellCounter { name, value });
appvsweb_json::impl_json!(struct CellHistogram { name, count, sum, buckets });
appvsweb_json::impl_json!(struct CellJournal { cell, events, counters, histograms });
appvsweb_json::impl_json!(struct StudyJournal { cells });

impl CellJournal {
    /// Look up a counter total by name (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Count entries with the given name and kind.
    pub fn count_kind(&self, name: &str, kind: EventKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind && e.name == name)
            .count() as u64
    }

    /// Whether every span open has exactly one matching close and the
    /// nesting depth returns to zero (per-name and overall).
    pub fn spans_balanced(&self) -> bool {
        let mut depth = 0i64;
        let mut per_name: BTreeMap<&str, i64> = BTreeMap::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::SpanOpen => {
                    depth += 1;
                    *per_name.entry(ev.name.as_str()).or_insert(0) += 1;
                }
                EventKind::SpanClose => {
                    depth -= 1;
                    *per_name.entry(ev.name.as_str()).or_insert(0) -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                EventKind::Event => {}
            }
        }
        depth == 0 && per_name.values().all(|&n| n == 0)
    }
}

impl StudyJournal {
    /// Look up a cell journal by id.
    pub fn cell(&self, id: &str) -> Option<&CellJournal> {
        self.cells.iter().find(|c| c.cell == id)
    }

    /// Sum a counter across every cell journal.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.cells.iter().map(|c| c.counter(name)).sum()
    }
}

// ---------------------------------------------------------------------
// Recording machinery.
// ---------------------------------------------------------------------

struct HistAcc {
    count: u64,
    sum: u64,
    buckets: [u64; BUCKETS],
}

/// Number of log2 buckets (bucket 0 = zero, last bucket saturates).
pub const BUCKETS: usize = 17;

/// Bucket index for a recorded value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

struct Recorder {
    cell: String,
    seq: u64,
    now_ms: u64,
    depth: u64,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistAcc>,
}

impl Recorder {
    fn new(cell: String) -> Self {
        Recorder {
            cell,
            seq: 0,
            now_ms: 0,
            depth: 0,
            events: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    fn push(&mut self, kind: EventKind, depth: u64, name: &str, detail: String) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event {
            seq,
            at_ms: self.now_ms,
            kind,
            depth,
            name: name.to_string(),
            detail,
        });
    }

    fn finish(self) -> CellJournal {
        CellJournal {
            cell: self.cell,
            events: self.events,
            counters: self
                .counters
                .into_iter()
                .map(|(name, value)| CellCounter { name, value })
                .collect(),
            histograms: self
                .histograms
                .into_iter()
                .map(|(name, acc)| CellHistogram {
                    name,
                    count: acc.count,
                    sum: acc.sum,
                    buckets: acc.buckets.to_vec(),
                })
                .collect(),
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

static CAPTURING: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<CellJournal>> = Mutex::new(Vec::new());

pub(crate) fn is_capturing() -> bool {
    CAPTURING.load(Ordering::Relaxed)
}

pub(crate) fn begin() {
    SINK.lock().unwrap_or_else(|e| e.into_inner()).clear();
    CAPTURING.store(true, Ordering::Relaxed);
}

pub(crate) fn end() -> StudyJournal {
    CAPTURING.store(false, Ordering::Relaxed);
    let mut cells: Vec<CellJournal> =
        std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()));
    cells.sort_by(|a, b| a.cell.cmp(&b.cell));
    StudyJournal { cells }
}

pub(crate) fn set_now(at_ms: u64) {
    with_recorder(|rec| rec.now_ms = at_ms);
}

fn with_recorder<F: FnOnce(&mut Recorder)>(f: F) {
    if !is_capturing() {
        return;
    }
    RECORDER.with(|slot| {
        if let Some(rec) = slot.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Record a point event (used by the [`crate::event!`] macro).
pub fn record_event(name: &str, detail: String) {
    with_recorder(|rec| {
        let depth = rec.depth;
        rec.push(EventKind::Event, depth, name, detail);
    });
}

/// Fold a counter increment into the active cell journal (used by the
/// [`crate::counter!`] macro; the process-wide slot is bumped
/// separately).
pub fn cell_counter(name: &str, n: u64) {
    with_recorder(|rec| {
        *rec.counters.entry(name.to_string()).or_insert(0) += n;
    });
}

/// Fold a histogram sample into the active cell journal (used by the
/// [`crate::histogram!`] macro).
pub fn cell_histogram(name: &str, v: u64) {
    with_recorder(|rec| {
        let acc = rec.histograms.entry(name.to_string()).or_insert(HistAcc {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        });
        acc.count += 1;
        acc.sum += v;
        if let Some(slot) = acc.buckets.get_mut(bucket_index(v)) {
            *slot += 1;
        }
    });
}

/// Guard installing a fresh journal for one cell on the current thread.
///
/// Created by [`cell_scope`]. On drop the finished journal is pushed
/// into the global sink and any previously active recorder (scopes
/// nest) is restored. Inert when no capture is running.
pub struct CellScope {
    prev: Option<Recorder>,
    active: bool,
}

/// Begin recording a cell journal on this thread.
///
/// `cell` becomes the journal's sort key — study cells use their
/// `"service/Os/Medium"` label, training sessions a `"train/…"` prefix.
pub fn cell_scope(cell: &str) -> CellScope {
    if !crate::capturing() {
        return CellScope {
            prev: None,
            active: false,
        };
    }
    let prev = RECORDER.with(|slot| slot.borrow_mut().replace(Recorder::new(cell.to_string())));
    CellScope { prev, active: true }
}

impl Drop for CellScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let rec = RECORDER.with(|slot| {
            let mut slot = slot.borrow_mut();
            let rec = slot.take();
            *slot = self.prev.take();
            rec
        });
        if let Some(rec) = rec {
            SINK.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(rec.finish());
        }
    }
}

/// Guard for one open span (created by the [`crate::span!`] macro).
///
/// Records `SpanOpen` on creation and the matching `SpanClose` when
/// dropped — including during unwinding — so journals always balance.
pub struct SpanGuard {
    name: &'static str,
    active: bool,
}

impl SpanGuard {
    /// Open a span in the active cell journal. Inert (and free) when no
    /// capture is running or no cell scope is installed on this thread.
    pub fn open(name: &'static str, detail: String) -> SpanGuard {
        let mut active = false;
        with_recorder(|rec| {
            let depth = rec.depth;
            rec.push(EventKind::SpanOpen, depth, name, detail);
            rec.depth += 1;
            active = true;
        });
        SpanGuard { name, active }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        with_recorder(|rec| {
            rec.depth = rec.depth.saturating_sub(1);
            let depth = rec.depth;
            rec.push(EventKind::SpanClose, depth, self.name, String::new());
        });
    }
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

/// Render one cell journal as an indented span tree.
///
/// Total on arbitrary (even adversarial, fuzz-decoded) journals: the
/// indent tracks opens/closes with saturating arithmetic and is capped,
/// so unbalanced input renders rather than panicking.
pub fn render_tree(cell: &CellJournal) -> String {
    let mut out = String::new();
    out.push_str("cell ");
    out.push_str(&cell.cell);
    out.push('\n');
    let mut indent: usize = 0;
    for ev in &cell.events {
        let (glyph, at_indent) = match ev.kind {
            EventKind::SpanOpen => {
                let at = indent;
                indent += 1;
                ('>', at)
            }
            EventKind::SpanClose => {
                indent = indent.saturating_sub(1);
                ('<', indent)
            }
            EventKind::Event => ('*', indent),
        };
        out.push_str(&"  ".repeat(at_indent.min(64)));
        out.push(glyph);
        out.push(' ');
        out.push_str(&ev.name);
        if !ev.detail.is_empty() {
            out.push_str("  ");
            out.push_str(&ev.detail);
        }
        out.push_str(&format!("  [t={}ms seq={}]\n", ev.at_ms, ev.seq));
    }
    if !cell.counters.is_empty() {
        out.push_str("counters:\n");
        for c in &cell.counters {
            out.push_str(&format!("  {} = {}\n", c.name, c.value));
        }
    }
    if !cell.histograms.is_empty() {
        out.push_str("histograms:\n");
        for h in &cell.histograms {
            out.push_str(&format!("  {}  count={} sum={}\n", h.name, h.count, h.sum));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Journal globals are process-wide; serialize the tests that arm
    /// capture, mirroring the cover-crate pattern.
    static LOCK: Mutex<()> = Mutex::new(());

    #[cfg(feature = "enabled")]
    #[test]
    fn scope_records_events_spans_and_counters_in_seq_order() {
        let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::capture_begin();
        {
            let _scope = cell_scope("svc/Android/App");
            crate::stamp(5);
            let _span = crate::span!("outer", "d={}", 1);
            crate::event!("hello", "x");
            crate::counter!("test.journal.hits", 3);
            crate::histogram!("test.journal.sizes", 9u64);
        }
        let journal = crate::capture_end();
        assert_eq!(journal.cells.len(), 1);
        let cell = journal.cell("svc/Android/App").expect("cell present");
        let kinds: Vec<EventKind> = cell.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::SpanOpen, EventKind::Event, EventKind::SpanClose]
        );
        for (i, ev) in cell.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64, "seq must be dense");
            assert_eq!(ev.at_ms, 5, "stamp applies to later entries");
        }
        assert!(cell.spans_balanced());
        assert_eq!(cell.counter("test.journal.hits"), 3);
        assert_eq!(cell.histograms.len(), 1);
        let tree = render_tree(cell);
        assert!(tree.contains("> outer"));
        assert!(tree.contains("* hello"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn cells_sort_by_id_regardless_of_completion_order() {
        let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::capture_begin();
        {
            let _scope = cell_scope("zz");
            crate::event!("late");
        }
        {
            let _scope = cell_scope("aa");
            crate::event!("early");
        }
        let journal = crate::capture_end();
        let ids: Vec<&str> = journal.cells.iter().map(|c| c.cell.as_str()).collect();
        assert_eq!(ids, vec!["aa", "zz"]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_close_exactly_once_under_unwinding() {
        let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::capture_begin();
        {
            let _scope = cell_scope("panicky");
            let _outer = crate::span!("outer");
            let unwound = std::panic::catch_unwind(|| {
                let _inner = crate::span!("inner");
                crate::event!("before-panic");
                panic!("boom");
            });
            assert!(unwound.is_err());
        }
        let journal = crate::capture_end();
        let cell = journal.cell("panicky").expect("cell present");
        assert!(cell.spans_balanced(), "unwound span must still close");
        assert_eq!(cell.count_kind("inner", EventKind::SpanClose), 1);
        assert_eq!(cell.count_kind("outer", EventKind::SpanClose), 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn events_outside_a_scope_are_dropped() {
        let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::capture_begin();
        crate::event!("orphan");
        let journal = crate::capture_end();
        assert!(journal.cells.is_empty());
    }

    #[test]
    fn disabled_or_idle_capture_is_empty_and_inert() {
        let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // No capture armed: scopes are inert and record nothing.
        {
            let _scope = cell_scope("idle");
            crate::event!("dropped");
        }
        let journal = crate::capture_end();
        assert!(journal.cells.is_empty());
    }

    #[test]
    fn journal_json_round_trips() {
        let journal = StudyJournal {
            cells: vec![CellJournal {
                cell: "svc/Ios/Web".to_string(),
                events: vec![Event {
                    seq: 0,
                    at_ms: 12,
                    kind: EventKind::Event,
                    depth: 0,
                    name: "n".to_string(),
                    detail: "d".to_string(),
                }],
                counters: vec![CellCounter {
                    name: "c".to_string(),
                    value: 2,
                }],
                histograms: vec![CellHistogram {
                    name: "h".to_string(),
                    count: 1,
                    sum: 9,
                    buckets: vec![0; BUCKETS],
                }],
            }],
        };
        let text = appvsweb_json::encode(&journal);
        let back: StudyJournal = appvsweb_json::decode(&text).expect("round trip");
        assert_eq!(back, journal);
    }

    #[test]
    fn render_tree_is_total_on_unbalanced_journals() {
        let cell = CellJournal {
            cell: "hostile".to_string(),
            events: vec![Event {
                seq: 7,
                at_ms: 0,
                kind: EventKind::SpanClose,
                depth: 3,
                name: "never-opened".to_string(),
                detail: String::new(),
            }],
            counters: Vec::new(),
            histograms: Vec::new(),
        };
        assert!(!cell.spans_balanced());
        let tree = render_tree(&cell);
        assert!(tree.contains("never-opened"));
    }

    #[test]
    fn bucket_index_is_log2_with_saturation() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }
}
