//! Deterministic observability: event journals + lock-free metrics.
//!
//! The study pipeline computes the paper's aggregates (flows, bytes,
//! leaks per cell) but until this crate recorded nothing about *how* it
//! got them. `appvsweb-obs` adds that substrate in the style of
//! [`appvsweb-cover`]: zero dependencies beyond the in-repo JSON crate,
//! no wall clock anywhere, and a hot path that is a handful of relaxed
//! atomic operations.
//!
//! Two planes, deliberately separate:
//!
//! * **Journal** ([`journal`]): structured per-cell event streams. A
//!   worker installs a [`journal::CellScope`]; every [`span!`]/[`event!`]
//!   fired on that thread lands in the scope's journal with a
//!   `(cell, seq)` key and a timestamp copied from the **sim clock**
//!   (instrumentation sites call [`stamp`] as simulated time advances).
//!   Completed journals drain into a global sink; [`capture_end`] sorts
//!   them by cell id, so the serialized study journal is byte-identical
//!   regardless of worker count or thread interleaving.
//! * **Metrics** ([`metrics`]): process-wide counters and fixed-bucket
//!   histograms. [`counter!`] and [`histogram!`] expand to a per-call-site
//!   `static` slot (lazily registered, then lock-free), and additionally
//!   fold the increment into the active cell journal when a capture is
//!   running — that per-cell copy is what the conservation-law checks
//!   compare across layers.
//!
//! # Feature gating
//!
//! Everything is compiled in both configurations; behaviour hangs off
//! the [`ENABLED`] constant (`cfg!(feature = "enabled")`). With the
//! feature off every macro body folds to nothing and [`capture_end`]
//! returns an empty journal, so dependents never need `cfg` of their
//! own and the `--no-default-features` build proves the zero-cost path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod journal;
pub mod metrics;

pub use journal::{cell_scope, CellScope, SpanGuard, StudyJournal};

/// Whether the instrumentation layer is compiled in.
///
/// A `const` rather than a `cfg` fence so that call sites read
/// `if ENABLED { … }` and the disabled branch constant-folds away while
/// still being type-checked in every build.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Whether a study capture is currently running.
///
/// `span!`/`event!` bodies check this first: when no capture is active
/// the only cost of an instrumentation site is this constant-folded
/// `ENABLED` test plus one relaxed atomic load.
#[inline]
pub fn capturing() -> bool {
    ENABLED && journal::is_capturing()
}

/// Record the current simulated time, in milliseconds since the sim
/// epoch, for the journal on this thread.
///
/// Instrumentation sites call this as their simulated clock advances;
/// every subsequent journal entry on the thread is stamped with the
/// value. The obs crate deliberately does not depend on `netsim`, so
/// callers pass `SimTime::as_millis()` rather than the type itself.
#[inline]
pub fn stamp(at_ms: u64) {
    if capturing() {
        journal::set_now(at_ms);
    }
}

/// Start a study capture: clears the journal sink and arms recording.
///
/// Not reentrant — one capture at a time per process. No-op when the
/// `enabled` feature is off.
pub fn capture_begin() {
    if ENABLED {
        journal::begin();
    }
}

/// Finish a study capture and return the sorted journal.
///
/// Cells are ordered by their id string, so the result is byte-identical
/// across worker counts. Returns an empty journal when `enabled` is off.
pub fn capture_end() -> StudyJournal {
    if ENABLED {
        journal::end()
    } else {
        StudyJournal { cells: Vec::new() }
    }
}

/// Open a span in the active cell journal; the returned [`SpanGuard`]
/// records the matching close when dropped (exactly once, including
/// during unwinding).
///
/// `span!("name")` or `span!("name", "detail {}", arg)`. The detail
/// format arguments are only evaluated while a capture is running.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::journal::SpanGuard::open($name, String::new())
    };
    ($name:expr, $($arg:tt)*) => {
        $crate::journal::SpanGuard::open(
            $name,
            if $crate::capturing() { format!($($arg)*) } else { String::new() },
        )
    };
}

/// Record a point event in the active cell journal.
///
/// `event!("name")` or `event!("name", "detail {}", arg)`. Format
/// arguments are only evaluated while a capture is running; outside a
/// [`cell_scope`] the event is dropped.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::capturing() {
            $crate::journal::record_event($name, String::new());
        }
    };
    ($name:expr, $($arg:tt)*) => {
        if $crate::capturing() {
            $crate::journal::record_event($name, format!($($arg)*));
        }
    };
}

/// Bump a process-wide counter (and the active cell journal's copy).
///
/// `counter!("name")` adds 1; `counter!("name", n)` adds `n`. Each call
/// site owns a lazily registered static slot, so the hot path is one
/// relaxed load plus one relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $n:expr) => {
        if $crate::ENABLED {
            static __OBS_COUNTER: $crate::metrics::CounterSlot =
                $crate::metrics::CounterSlot::new($name);
            let __obs_n = $n as u64;
            __OBS_COUNTER.add(__obs_n);
            $crate::journal::cell_counter($name, __obs_n);
        }
    };
}

/// Record a value in a process-wide log2-bucket histogram (and the
/// active cell journal's copy).
///
/// `histogram!("name", value)`. Buckets are fixed powers of two, so the
/// aggregate is deterministic and mergeable without configuration.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $v:expr) => {
        if $crate::ENABLED {
            static __OBS_HISTOGRAM: $crate::metrics::HistogramSlot =
                $crate::metrics::HistogramSlot::new($name);
            let __obs_v = $v as u64;
            __OBS_HISTOGRAM.record(__obs_v);
            $crate::journal::cell_histogram($name, __obs_v);
        }
    };
}
