//! The `repro serve` subcommand: the supervised resident service.
//!
//! * `repro serve --listen PORT` runs the std-only HTTP server
//!   (submit/status/report/health/drift) over a state directory, with
//!   WAL + checkpoint recovery on startup.
//! * `repro serve --demo` runs the drift-alarm demonstration: two
//!   revisions of the same monitoring series, diffed.
//! * `repro serve --smoke` is the CI gate: worker-count byte-identity,
//!   crash/recover/resume equality at **every** WAL record boundary,
//!   load-shed degradation, supervisor reap + quarantine accounting,
//!   and the golden-headline check on the no-fault serve path.

use appvsweb_core::CellId;
use appvsweb_json::ToJson;
use appvsweb_netsim::Os;
use appvsweb_serve::{
    recover, Admission, Checkpoint, JobSpec, JobStatus, MemWal, QueueConfig, ServeDir, ServeState,
    Server, WalKind, WalRecord,
};
use appvsweb_services::{Catalog, Medium};

struct Args {
    smoke: bool,
    demo: bool,
    listen: Option<u16>,
    dir: Option<String>,
    workers: usize,
    max_requests: u64,
}

fn parse_args(args: &[String]) -> Result<Args, i32> {
    let mut parsed = Args {
        smoke: false,
        demo: false,
        listen: None,
        dir: None,
        workers: 2,
        max_requests: 0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--demo" => parsed.demo = true,
            "--listen" => parsed.listen = it.next().and_then(|v| v.parse().ok()),
            "--dir" => parsed.dir = it.next().cloned(),
            "--workers" => parsed.workers = it.next().and_then(|v| v.parse().ok()).unwrap_or(2),
            "--max-requests" => {
                parsed.max_requests = it.next().and_then(|v| v.parse().ok()).unwrap_or(0)
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro serve [--smoke] [--demo] [--listen PORT] [--dir PATH] \
                     [--workers N] [--max-requests N]"
                );
                return Err(0);
            }
            other => {
                eprintln!("unknown serve argument: {other}");
                return Err(2);
            }
        }
    }
    Ok(parsed)
}

/// First `n` Android-testable services as app+web cells: a small,
/// stable explicit selection the gates run quickly on.
fn small_cells(n: usize) -> Vec<CellId> {
    let catalog = Catalog::paper();
    let mut cells = Vec::new();
    for spec in catalog.testable_on(Os::Android).take(n) {
        cells.push(CellId::new(spec.id, Os::Android, Medium::App));
        cells.push(CellId::new(spec.id, Os::Android, Medium::Web));
    }
    cells
}

fn quick_spec(name: &str, seed: u64) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        seed,
        minutes: 1,
        use_recon: false,
        cells: small_cells(3),
        ..JobSpec::default()
    }
}

/// The submissions every smoke/demo server receives, in order: two
/// revisions of the same monitoring series (the first degraded by a
/// fault plan, so the healthy second revision surfaces "new" domains
/// and types as drift) plus a supervised job with an injected stall
/// and an always-panicking poison cell.
fn smoke_submissions() -> Vec<JobSpec> {
    let cells = small_cells(3);
    let stall = cells
        .first()
        .map(|c| c.to_string())
        .into_iter()
        .collect::<Vec<_>>();
    let degraded = JobSpec {
        faults: "moderate".to_string(),
        ..quick_spec("monitor", 7)
    };
    let poison = JobSpec {
        name: "poison".to_string(),
        stall_cells: stall,
        cell_panic: 1.0,
        max_retries: 2,
        ..quick_spec("poison", 11)
    };
    vec![degraded, quick_spec("monitor", 7), poison]
}

fn run_submissions(workers: usize) -> Server<MemWal> {
    let mut server = Server::new(MemWal::default(), QueueConfig::default(), workers);
    for spec in smoke_submissions() {
        if let Err(e) = server.submit(spec) {
            eprintln!("smoke submission rejected: {e}");
        }
    }
    if let Err(e) = server.run_pending() {
        eprintln!("smoke run failed: {e}");
    }
    server
}

fn state_bytes(state: &ServeState) -> String {
    state.to_json().to_compact()
}

/// Entry point for `repro serve`. Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let args = match parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    if args.smoke {
        return appvsweb_testkit::fixtures::with_quiet_panics(smoke);
    }
    if args.demo {
        // The demo workload injects panics (faulted first revision,
        // poison job); keep their backtraces off the terminal.
        return appvsweb_testkit::fixtures::with_quiet_panics(|| demo(args.workers));
    }
    if let Some(port) = args.listen {
        return listen(port, &args);
    }
    eprintln!("nothing to do: pass --smoke, --demo, or --listen PORT");
    2
}

/// The drift-alarm demonstration: two revisions of the `monitor`
/// series, diffed into structured alarms.
fn demo(workers: usize) -> i32 {
    let server = run_submissions(workers);
    let state = &server.state;
    println!("== repro serve --demo: drift alarms ==");
    for rev in &state.revisions {
        println!(
            "revision {} job={} name={} cells={} digest={}",
            rev.id,
            rev.job,
            rev.name,
            rev.profiles.len(),
            rev.digest
        );
    }
    if state.alarms.is_empty() {
        println!("(no drift between revisions)");
    }
    for alarm in &state.alarms {
        println!("ALARM {}", alarm.render());
    }
    0
}

fn smoke() -> i32 {
    let mut failures = 0usize;
    let mut gate = |name: &str, ok: bool| {
        eprintln!("  [{}] {name}", if ok { " ok " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // Gate 1: worker-count invariance — the WAL and the state are
    // byte-identical at 1, 2, and 8 workers.
    let golden = run_submissions(1);
    let golden_wal = golden.sink().text.clone();
    let golden_state = state_bytes(&golden.state);
    let two = run_submissions(2);
    let eight = run_submissions(8);
    gate(
        "WAL byte-identical across 1/2/8 workers",
        golden_wal == two.sink().text && golden_wal == eight.sink().text,
    );
    gate(
        "state byte-identical across 1/2/8 workers",
        golden_state == state_bytes(&two.state) && golden_state == state_bytes(&eight.state),
    );

    // Gate 2: crash/recover/resume at every record boundary — truncate
    // the journal after each record (and mid-record for the torn tail),
    // recover, resume with the original submissions' jobs already
    // journaled, and require the final state to equal the uninterrupted
    // golden byte for byte.
    let lines: Vec<&str> = golden_wal.lines().collect();
    let mut resume_ok = true;
    let mut boundaries = 0usize;
    for cut in 0..=lines.len() {
        let mut prefix = String::new();
        for line in lines.iter().take(cut) {
            prefix.push_str(line);
            prefix.push('\n');
        }
        // Also prove torn-tail tolerance: drop half of the next record.
        let torn = lines.get(cut).map(|next| {
            let mut t = prefix.clone();
            t.push_str(&next[..next.len() / 2]);
            t
        });
        for text in std::iter::once(prefix).chain(torn) {
            boundaries += 1;
            let Ok((state, last_seq)) = recover(&text, None) else {
                resume_ok = false;
                continue;
            };
            let mut server =
                Server::recovered(MemWal { text }, state, last_seq, QueueConfig::default(), 1);
            // Re-submit anything the truncated journal lost, exactly as
            // the client would after a crash (submissions are the
            // durable inputs; jobs already journaled are deduped by
            // the ledger).
            for (i, spec) in smoke_submissions().into_iter().enumerate() {
                if server.state.job(i as u64).is_none() && server.submit(spec).is_err() {
                    resume_ok = false;
                }
            }
            if server.run_pending().is_err() {
                resume_ok = false;
            }
            if state_bytes(&server.state) != golden_state {
                resume_ok = false;
            }
        }
    }
    gate(
        &format!("crash/recover/resume equals golden at all {boundaries} truncation points"),
        resume_ok && boundaries > 6,
    );

    // Gate 3: checkpoint + suffix replay equals full replay, at every
    // quiescent boundary (no job mid-run — the only points the real
    // server writes checkpoints, since `requeue_inflight` deliberately
    // rewinds mid-job progress that the suffix would then double-count).
    let quiescent: Vec<usize> = {
        let mut cuts = Vec::new();
        let mut open = 0i64;
        for (i, line) in lines.iter().enumerate() {
            match WalRecord::decode(line).map(|r| r.kind) {
                Ok(WalKind::Start) => open += 1,
                Ok(WalKind::Finish) | Ok(WalKind::JobFail) => open -= 1,
                _ => {}
            }
            if open == 0 {
                cuts.push(i + 1);
            }
        }
        cuts
    };
    let mut checkpoint_ok = quiescent.len() > 3 && quiescent.contains(&lines.len());
    for &cut in &quiescent {
        let mut prefix = String::new();
        for line in lines.iter().take(cut) {
            prefix.push_str(line);
            prefix.push('\n');
        }
        let Ok((state, last_seq)) = recover(&prefix, None) else {
            checkpoint_ok = false;
            continue;
        };
        let cp = Checkpoint {
            wal_seq: last_seq,
            state,
        };
        let Ok((from_cp, _)) = recover(&golden_wal, Some(&cp)) else {
            checkpoint_ok = false;
            continue;
        };
        let Ok((full, _)) = recover(&golden_wal, None) else {
            checkpoint_ok = false;
            continue;
        };
        if state_bytes(&from_cp) != state_bytes(&full) {
            checkpoint_ok = false;
        }
    }
    gate(
        &format!(
            "checkpoint + WAL suffix equals full replay at all {} quiescent points",
            quiescent.len()
        ),
        checkpoint_ok,
    );

    // Gate 4: supervisor accounting — the stalled cell was reaped and
    // retried; the poison cell was quarantined with its payload in the
    // health ledger.
    let poison_rev = golden.state.revisions.iter().find(|r| r.name == "poison");
    let sup_ok = poison_rev.is_some_and(|rev| {
        rev.health.supervisor_reaps >= 1
            && rev.health.cells_quarantined >= 1
            && rev
                .health
                .failures
                .iter()
                .any(|f| f.error.contains("panic") || f.error.contains("injected"))
    });
    gate("supervisor reaps + quarantines land in StudyHealth", sup_ok);

    // Gate 5: drift alarms — the two monitor revisions differ.
    gate(
        "drift alarms fire between monitor revisions",
        !golden.state.alarms.is_empty(),
    );

    // Gate 6: load-shedding — a queue past `depth` degrades coverage,
    // and past `hard_cap` rejects.
    let mut shed_server = Server::new(
        MemWal::default(),
        QueueConfig {
            depth: 1,
            hard_cap: 2,
            shed_stride: 2,
        },
        1,
    );
    let admissions: Vec<Admission> = (0..3)
        .filter_map(|i| {
            shed_server
                .submit(quick_spec("shed", 20 + i))
                .ok()
                .map(|(_, a)| a)
        })
        .collect();
    let shed_ok = admissions == vec![Admission::Admit, Admission::Shed(2), Admission::Reject]
        && shed_server.run_pending().is_ok()
        && {
            let full = shed_server.state.revisions.iter().find(|r| r.job == 0);
            let shed = shed_server.state.revisions.iter().find(|r| r.job == 1);
            match (full, shed) {
                (Some(f), Some(s)) => s.profiles.len() < f.profiles.len(),
                _ => false,
            }
        }
        && shed_server
            .state
            .job(2)
            .is_some_and(|j| j.status == JobStatus::Rejected);
    gate("load-shed degrades coverage; hard cap rejects", shed_ok);

    // Gate 7: the no-fault serve path reproduces the golden headlines
    // (92.0 / 74.0 / 53.1 / 75.5) unchanged.
    let mut full_server = Server::new(MemWal::default(), QueueConfig::default(), 0);
    let full_spec = JobSpec {
        name: "golden".to_string(),
        seed: 2016,
        minutes: 4,
        use_recon: true,
        ..JobSpec::default()
    };
    let headline_ok = full_server.submit(full_spec).is_ok()
        && full_server.run_pending().is_ok()
        && full_server.state.revisions.first().is_some_and(|rev| {
            let h = &rev.headlines;
            h.app_pct == 92.0
                && h.web_pct == 74.0
                && h.android_web_pct == 53.1
                && h.ios_web_pct == 75.5
                && rev.health.is_complete()
        });
    gate(
        "no-fault serve path reproduces golden headlines",
        headline_ok,
    );

    if failures == 0 {
        eprintln!("serve smoke: all gates passed");
        0
    } else {
        eprintln!("serve smoke: {failures} gate(s) FAILED");
        1
    }
}

fn listen(port: u16, args: &Args) -> i32 {
    let dir = ServeDir::new(
        args.dir
            .clone()
            .unwrap_or_else(|| "serve-state".to_string()),
    );
    let mut server = match dir.open(QueueConfig::default(), args.workers) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot open state dir: {e}");
            return 1;
        }
    };
    eprintln!(
        "recovered: {} job(s), {} revision(s), {} queued",
        server.state.jobs.len(),
        server.state.revisions.len(),
        server.state.queued.len()
    );
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return 1;
        }
    };
    eprintln!("repro serve listening on http://127.0.0.1:{port}");
    let mut handled = 0u64;
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let response = {
            use std::io::Read;
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            // Read until a full request parses or the peer stops.
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        match appvsweb_serve::http::parse_request(&buf) {
                            Err(appvsweb_serve::http::HttpError::Incomplete)
                            | Err(appvsweb_serve::http::HttpError::ShortBody) => continue,
                            _ => break,
                        }
                    }
                    Err(_) => break,
                }
            }
            appvsweb_serve::http::handle(&mut server, &buf)
        };
        {
            use std::io::Write;
            let _ = stream.write_all(response.as_bytes());
            let _ = stream.flush();
        }
        // Drain the queue between requests, then checkpoint.
        if let Err(e) = server.run_pending() {
            eprintln!("job execution failed: {e}");
        }
        if let Err(e) = dir.write_checkpoint(&server.checkpoint()) {
            eprintln!("checkpoint failed: {e}");
        }
        handled += 1;
        if args.max_requests > 0 && handled >= args.max_requests {
            break;
        }
    }
    0
}
