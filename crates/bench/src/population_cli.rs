//! The `repro population` subcommand: population-scale campaigns.
//!
//! * `repro population` measures the base study, scales it to the
//!   configured user count, and prints the population renderings of
//!   Tables 3–5 plus the Figure 2–7 CDF summaries.
//! * `repro population --smoke` is the CI gate: a 1k-user campaign on
//!   the quick study, asserting the determinism contract end to end —
//!   1 and 2 workers byte-identical, and shard partitioning invisible
//!   to the aggregate (the merge law through the real ingest path).
//!   Exits non-zero on any violation.

use appvsweb_analysis::population::render_population_report;
use appvsweb_core::study::{run_study, StudyConfig};
use appvsweb_netsim::SimDuration;
use appvsweb_population::{run_campaign_on, CampaignConfig};

struct Args {
    cfg: CampaignConfig,
    minutes: u64,
    smoke: bool,
    json: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, i32> {
    let mut parsed = Args {
        cfg: CampaignConfig::default(),
        minutes: 4,
        smoke: false,
        json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num =
            |default: u64| -> u64 { it.next().and_then(|v| v.parse().ok()).unwrap_or(default) };
        match arg.as_str() {
            "--users" => parsed.cfg.users = num(10_000),
            "--shards" => parsed.cfg.shards = num(64) as u32,
            "--workers" => parsed.cfg.workers = num(1) as usize,
            "--seed" => parsed.cfg.seed = num(2016),
            "--minutes" => parsed.minutes = num(4),
            "--smoke" => parsed.smoke = true,
            "--json" => parsed.json = it.next().cloned(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro population [--users N] [--shards N] [--workers N] \
                     [--seed N] [--minutes N] [--smoke] [--json FILE]"
                );
                return Err(0);
            }
            other => {
                eprintln!("unknown population argument: {other}");
                return Err(2);
            }
        }
    }
    Ok(parsed)
}

/// Entry point for `repro population`. Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let args = match parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    if args.smoke {
        return smoke();
    }
    let study_cfg = StudyConfig {
        duration: SimDuration::from_mins(args.minutes),
        ..StudyConfig::default()
    };
    eprintln!(
        "measuring the base study ({} min sessions), then scaling to {} users ...",
        args.minutes, args.cfg.users
    );
    let study = run_study(&study_cfg);
    let report = run_campaign_on(&study, &args.cfg);
    println!("{}", render_population_report(&report));
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, appvsweb_json::encode_pretty(&report)) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        eprintln!("population report written to {path}");
    }
    0
}

/// The CI smoke gate: a 1k-user campaign on the quick study with the
/// determinism contract asserted end to end.
fn smoke() -> i32 {
    let study = run_study(&crate::quick_config());
    let base = CampaignConfig {
        users: 1_000,
        shards: 16,
        workers: 1,
        seed: 2016,
    };
    let one = run_campaign_on(&study, &base);
    let mut failures = 0usize;
    let mut gate = |name: &str, ok: bool| {
        eprintln!("  [{}] {name}", if ok { " ok " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    let two = run_campaign_on(
        &study,
        &CampaignConfig {
            workers: 2,
            ..base.clone()
        },
    );
    gate(
        "1 and 2 workers byte-identical",
        appvsweb_json::encode(&one) == appvsweb_json::encode(&two),
    );

    let single_shard = run_campaign_on(
        &study,
        &CampaignConfig {
            shards: 1,
            ..base.clone()
        },
    );
    gate(
        "shard partitioning invisible to the aggregate",
        appvsweb_json::encode(&one.aggregate) == appvsweb_json::encode(&single_shard.aggregate),
    );
    gate(
        "top-k summaries stayed in the exact regime",
        one.aggregate.is_exact(),
    );
    gate("every user accounted", one.aggregate.users == base.users);
    gate("constant-memory witness present", one.peak_state_bytes > 0);

    if failures > 0 {
        eprintln!("population --smoke: FAIL ({failures} gates)");
        1
    } else {
        eprintln!(
            "population --smoke: determinism contract holds ({} users, {} sessions)",
            one.aggregate.users, one.aggregate.sessions
        );
        0
    }
}
