//! Shared helpers for the reproduction benches and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz_cli;
pub mod fuzz_targets;
pub mod obs_cli;
pub mod population_cli;
pub mod serve_cli;

use appvsweb_analysis::Study;
use appvsweb_core::study::StudyConfig;

/// The canonical full study (seed 2016, 4-minute sessions), computed once
/// per process and shared by every table/figure bench. Delegates to the
/// testkit fixture so benches and integration tests share one cache.
pub fn shared_study() -> &'static Study {
    appvsweb_testkit::fixtures::canonical_study()
}

/// A faster study configuration (1-minute sessions, no ReCon) for benches
/// that measure the pipeline itself rather than consume its output.
pub fn quick_config() -> StudyConfig {
    appvsweb_testkit::fixtures::quick_study_config()
}

/// The repository root, where `BENCH_*.json` artifacts are written so
/// successive PRs can diff them in place.
pub fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

/// Read one benchmark's committed median from a `BENCH_<suite>.json`
/// artifact. `None` when the file, the entry, or the field is missing —
/// a fresh checkout without artifacts must not trip the regression
/// gate.
pub fn committed_median_ns(path: &std::path::Path, name: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = appvsweb_json::parse(&text).ok()?;
    json.get("results")?
        .items()
        .ok()?
        .iter()
        .find(|r| matches!(r.get("name"), Some(appvsweb_json::Json::Str(s)) if s == name))?
        .field::<f64>("median_ns")
        .ok()
}
