//! Shared helpers for the reproduction benches and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use appvsweb_analysis::Study;
use appvsweb_core::study::{run_study, StudyConfig};
use std::sync::OnceLock;

/// The canonical full study (seed 2016, 4-minute sessions), computed once
/// per process and shared by every table/figure bench.
pub fn shared_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&StudyConfig::default()))
}

/// A faster study configuration (1-minute sessions, no ReCon) for benches
/// that measure the pipeline itself rather than consume its output.
pub fn quick_config() -> StudyConfig {
    StudyConfig {
        duration: appvsweb_netsim::SimDuration::from_mins(1),
        use_recon: false,
        ..StudyConfig::default()
    }
}

/// The repository root, where `BENCH_*.json` artifacts are written so
/// successive PRs can diff them in place.
pub fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}
