//! The `repro trace` and `repro metrics` subcommands: surface the
//! observability layer from the command line.
//!
//! * `repro trace --cell SERVICE/OS/MEDIUM` runs one cell under capture
//!   and prints its span tree; without `--cell` it runs the quick
//!   campaign and prints a one-line journal summary per cell.
//! * `repro metrics` runs the quick campaign and dumps the aggregated
//!   metrics registry as JSON; `repro metrics --check` additionally
//!   verifies the cross-layer conservation laws (flow, retry, fault and
//!   byte accounting must agree between the obs counters, the journal,
//!   and the study's own health ledger) and exits non-zero on any
//!   violation — the CI gate for silent instrumentation drift.
//!
//! The law checks run under fault plans with `cell_panic` held at zero:
//! a panicked attempt unwinds out of the proxy before `finish_session`,
//! so its flow/retry ledgers are legitimately incomplete and the laws
//! below would not be exact.

use appvsweb_analysis::Study;
use appvsweb_core::study::{run_cell_journal, run_study, StudyConfig};
use appvsweb_netsim::{FaultPlan, Os};
use appvsweb_obs::journal::{render_tree, EventKind};
use appvsweb_obs::metrics::{self, MetricsSnapshot};
use appvsweb_obs::StudyJournal;
use appvsweb_services::{Catalog, Medium};

/// Entry point for `repro trace`. Returns the process exit code.
pub fn run_trace(args: &[String]) -> i32 {
    if !appvsweb_obs::ENABLED {
        eprintln!("repro trace: observability is compiled out (build with the `obs` feature)");
        return 2;
    }
    let mut cell: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cell" => cell = it.next().cloned(),
            "--help" | "-h" => {
                eprintln!("usage: repro trace [--cell SERVICE/OS/MEDIUM]");
                return 0;
            }
            other => {
                eprintln!("unknown trace argument: {other}");
                return 2;
            }
        }
    }
    let cfg = crate::quick_config();
    match cell {
        Some(label) => trace_one_cell(&label, &cfg),
        None => trace_campaign(&cfg),
    }
}

/// Run a single cell under capture and print every journal it produced
/// (the cell itself, plus training pseudo-cells when ReCon is on).
fn trace_one_cell(label: &str, cfg: &StudyConfig) -> i32 {
    let Some((service, os, medium)) = parse_cell(label) else {
        eprintln!("bad --cell (expected SERVICE/OS/MEDIUM, e.g. weather-channel/Android/App)");
        return 2;
    };
    let catalog = Catalog::paper();
    let Some(spec) = catalog.get(&service) else {
        eprintln!("unknown service id: {service} (see the catalog in crates/services)");
        return 2;
    };
    let (analysis, journal) = run_cell_journal(spec, os, medium, cfg, None);
    for cell in &journal.cells {
        println!("{}", render_tree(cell));
    }
    if analysis.is_none() {
        eprintln!("cell exhausted its attempts; the journal above covers every attempt");
        return 1;
    }
    0
}

/// Run the quick campaign under capture and summarize each journal.
fn trace_campaign(cfg: &StudyConfig) -> i32 {
    appvsweb_obs::capture_begin();
    let study = run_study(cfg);
    let journal = appvsweb_obs::capture_end();
    println!(
        "{:<44} {:>7} {:>7} {:>9} {:>10}",
        "cell", "events", "spans", "counters", "last_t_ms"
    );
    for cell in &journal.cells {
        let spans = cell
            .events
            .iter()
            .filter(|e| e.kind == EventKind::SpanOpen)
            .count();
        let last_ms = cell.events.last().map_or(0, |e| e.at_ms);
        println!(
            "{:<44} {:>7} {:>7} {:>9} {:>10}",
            cell.cell,
            cell.events.len(),
            spans,
            cell.counters.len(),
            last_ms
        );
    }
    let total_events: usize = journal.cells.iter().map(|c| c.events.len()).sum();
    println!(
        "\n{} cell journals, {} events; {}",
        journal.cells.len(),
        total_events,
        study.health.summary()
    );
    0
}

/// Entry point for `repro metrics`. Returns the process exit code: 0 on
/// success, 1 when `--check` finds a conservation-law violation, 2 on
/// usage errors.
pub fn run_metrics(args: &[String]) -> i32 {
    if !appvsweb_obs::ENABLED {
        eprintln!("repro metrics: observability is compiled out (build with the `obs` feature)");
        return 2;
    }
    let mut check = false;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: repro metrics [--check]");
                return 0;
            }
            other => {
                eprintln!("unknown metrics argument: {other}");
                return 2;
            }
        }
    }
    if check {
        return check_laws();
    }
    metrics::reset();
    let study = run_study(&crate::quick_config());
    let snap = metrics::snapshot();
    println!("{}", appvsweb_json::encode_pretty(&snap));
    eprintln!("({})", study.health.summary());
    0
}

/// Run the conservation-law suite under two fault plans and report.
fn check_laws() -> i32 {
    let quick = crate::quick_config();
    let moderate = {
        let mut plan = FaultPlan::preset("moderate").unwrap_or_default();
        // Exactness requires no panicked attempts; see the module docs.
        plan.cell_panic = 0.0;
        plan
    };
    let plans = [
        ("none".to_string(), FaultPlan::none()),
        ("moderate, cell_panic=0".to_string(), moderate),
    ];
    let mut violations = 0usize;
    for (label, faults) in plans {
        let cfg = StudyConfig {
            faults,
            ..quick.clone()
        };
        violations += check_plan(&label, &cfg);
    }
    if violations > 0 {
        eprintln!("metrics --check: FAIL ({violations} law violations)");
        1
    } else {
        eprintln!("metrics --check: every conservation law holds");
        0
    }
}

/// Run one campaign and verify every law; returns the violation count.
fn check_plan(label: &str, cfg: &StudyConfig) -> usize {
    metrics::reset();
    appvsweb_obs::capture_begin();
    let study = run_study(cfg);
    let journal = appvsweb_obs::capture_end();
    let snap = metrics::snapshot();
    println!("== plan {label}: {} ==", study.health.summary());

    let mut failed = 0usize;
    let mut law = |name: &str, ok: bool, detail: String| {
        println!("  [{}] {name}: {detail}", if ok { " ok " } else { "FAIL" });
        if !ok {
            failed += 1;
        }
    };

    law_accounting(&study, &mut law);
    law_spans(&journal, &mut law);
    law_flows(&journal, &snap, &mut law);
    law_retries(&study, &snap, &mut law);
    law_faults(&study, &snap, &mut law);
    law_bytes(&snap, &mut law);
    law_journal_matches_registry(&journal, &snap, &mut law);
    failed
}

/// Every attempted cell completed (exactness precondition: with
/// `cell_panic = 0` nothing can fail, so a failure is itself a bug).
fn law_accounting(study: &Study, law: &mut impl FnMut(&str, bool, String)) {
    let h = &study.health;
    law(
        "cell accounting",
        h.all_accounted() && h.cells_failed == 0,
        format!(
            "{} attempted = {} completed + {} failed",
            h.cells_attempted, h.cells_completed, h.cells_failed
        ),
    );
}

/// Every span opened in every journal closed exactly once.
fn law_spans(journal: &StudyJournal, law: &mut impl FnMut(&str, bool, String)) {
    let unbalanced = journal.cells.iter().filter(|c| !c.spans_balanced()).count();
    law(
        "balanced spans",
        unbalanced == 0,
        format!(
            "{} of {} journals unbalanced",
            unbalanced,
            journal.cells.len()
        ),
    );
}

/// Every flow the proxy opened was closed (`finish_session` sweeps the
/// pool), and the journal's per-cell copies sum to the global counters.
fn law_flows(
    journal: &StudyJournal,
    snap: &MetricsSnapshot,
    law: &mut impl FnMut(&str, bool, String),
) {
    let opened = snap.counter("mitm.flows_opened");
    let closed = snap.counter("mitm.flows_closed");
    law(
        "flow conservation",
        opened == closed && journal.counter_total("mitm.flows_opened") == opened,
        format!(
            "opened {opened} == closed {closed} (journal total {})",
            journal.counter_total("mitm.flows_opened")
        ),
    );
}

/// Client retries counted at the session layer match the study ledger.
fn law_retries(study: &Study, snap: &MetricsSnapshot, law: &mut impl FnMut(&str, bool, String)) {
    let counted = snap.counter("session.retries");
    law(
        "retry conservation",
        counted == study.health.session_retries,
        format!(
            "obs {counted} == health ledger {}",
            study.health.session_retries
        ),
    );
    // Every retry drew exactly one backoff delay.
    let backoffs = snap
        .histograms
        .iter()
        .find(|h| h.name == "session.backoff_ms")
        .map_or(0, |h| h.count);
    law(
        "backoff histogram",
        backoffs == counted,
        format!("backoff samples {backoffs} == retries {counted}"),
    );
}

/// Faults counted at the injection choke point match the study ledger
/// (which additionally books one `cell_panics` entry per panicked
/// attempt — those never pass through `FaultCounts::record`).
fn law_faults(study: &Study, snap: &MetricsSnapshot, law: &mut impl FnMut(&str, bool, String)) {
    let injected = snap.counter("netsim.faults.injected");
    let ledger = study.health.faults.total() - study.health.faults.cell_panics;
    law(
        "fault conservation",
        injected == ledger,
        format!("obs {injected} == health ledger {ledger}"),
    );
}

/// Byte conservation across layers: every byte a simulated TCP
/// connection moved is accounted for by exactly one producer —
/// HTTP codec output, TLS record framing, handshake flights, failed
/// handshake flights — minus bytes a connection fault destroyed.
fn law_bytes(snap: &MetricsSnapshot, law: &mut impl FnMut(&str, bool, String)) {
    let moved = snap.counter("netsim.conn.bytes_up") + snap.counter("netsim.conn.bytes_down");
    let lost = snap.counter("mitm.bytes_lost");
    let produced = snap.counter("httpsim.codec_bytes")
        + snap.counter("tlssim.record_overhead_bytes")
        + snap.counter("mitm.handshake_bytes")
        + snap.counter("mitm.tls_failed_bytes");
    law(
        "byte conservation",
        moved + lost == produced,
        format!("moved {moved} + lost {lost} == produced {produced}"),
    );
}

/// The per-cell journal copies of every law counter sum to the
/// process-wide registry value: nothing fired outside a cell scope.
fn law_journal_matches_registry(
    journal: &StudyJournal,
    snap: &MetricsSnapshot,
    law: &mut impl FnMut(&str, bool, String),
) {
    const NAMES: [&str; 9] = [
        "netsim.conn.bytes_up",
        "netsim.conn.bytes_down",
        "netsim.faults.injected",
        "httpsim.codec_bytes",
        "mitm.handshake_bytes",
        "mitm.tls_failed_bytes",
        "mitm.bytes_lost",
        "mitm.transactions",
        "session.retries",
    ];
    let drifted: Vec<&str> = NAMES
        .into_iter()
        .filter(|name| journal.counter_total(name) != snap.counter(name))
        .collect();
    law(
        "journal/registry agreement",
        drifted.is_empty(),
        if drifted.is_empty() {
            format!("{} counters agree", NAMES.len())
        } else {
            format!("drift on {}", drifted.join(", "))
        },
    );
}

/// Parse a `SERVICE/OS/MEDIUM` cell label.
fn parse_cell(label: &str) -> Option<(String, Os, Medium)> {
    let mut parts = label.split('/');
    let service = parts.next()?.to_string();
    let os = match parts.next()? {
        "Android" | "android" => Os::Android,
        "Ios" | "ios" | "iOS" => Os::Ios,
        _ => return None,
    };
    let medium = match parts.next()? {
        "App" | "app" => Medium::App,
        "Web" | "web" => Medium::Web,
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some((service, os, medium))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_labels_parse_and_reject() {
        assert_eq!(
            parse_cell("weather-channel/Android/App"),
            Some(("weather-channel".to_string(), Os::Android, Medium::App))
        );
        assert_eq!(
            parse_cell("bbc-news/ios/web"),
            Some(("bbc-news".to_string(), Os::Ios, Medium::Web))
        );
        assert_eq!(parse_cell("only-a-service"), None);
        assert_eq!(parse_cell("svc/Windows/App"), None);
        assert_eq!(parse_cell("svc/Android/App/extra"), None);
    }
}
