//! The workspace fuzz-target registry.
//!
//! Every parser-shaped surface in the workspace registers one
//! [`FuzzTarget`] here: the entry function, a mutation dictionary of
//! syntax tokens, and a handful of seed documents. The `repro fuzz`
//! subcommand, the corpus-replay integration test, and the CI smoke
//! gate all iterate this same list, so adding a target in one place
//! wires it into all three.

use appvsweb_testkit::FuzzTarget;

/// All registered fuzz targets, in a fixed, documented order.
pub fn all() -> Vec<FuzzTarget> {
    vec![
        FuzzTarget {
            name: "json",
            run: appvsweb_json::fuzz::run,
            dict: appvsweb_json::fuzz::DICT,
            seeds: appvsweb_json::fuzz::SEEDS,
            max_len: 512,
        },
        FuzzTarget {
            name: "httpsim_codec",
            run: appvsweb_httpsim::fuzz::run_codec,
            dict: appvsweb_httpsim::fuzz::CODEC_DICT,
            seeds: appvsweb_httpsim::fuzz::CODEC_SEEDS,
            max_len: 256,
        },
        FuzzTarget {
            name: "httpsim_gzip",
            run: appvsweb_httpsim::fuzz::run_gzip,
            dict: appvsweb_httpsim::fuzz::GZIP_DICT,
            seeds: appvsweb_httpsim::fuzz::GZIP_SEEDS,
            max_len: 512,
        },
        FuzzTarget {
            name: "httpsim_wire",
            run: appvsweb_httpsim::fuzz::run_wire,
            dict: appvsweb_httpsim::fuzz::WIRE_DICT,
            seeds: appvsweb_httpsim::fuzz::WIRE_SEEDS,
            // Large enough to keep the 1024-byte chunk-boundary pins
            // inside the mutable range.
            max_len: 2048,
        },
        FuzzTarget {
            name: "pii_tokenize",
            run: appvsweb_pii::fuzz::run,
            dict: appvsweb_pii::fuzz::DICT,
            seeds: appvsweb_pii::fuzz::SEEDS,
            max_len: 512,
        },
        FuzzTarget {
            name: "lint_lexer",
            run: appvsweb_lint::fuzz::run,
            dict: appvsweb_lint::fuzz::DICT,
            seeds: appvsweb_lint::fuzz::SEEDS,
            max_len: 512,
        },
        FuzzTarget {
            name: "lint_parse",
            run: appvsweb_lint::fuzz::run_parse,
            dict: appvsweb_lint::fuzz::PARSE_DICT,
            seeds: appvsweb_lint::fuzz::PARSE_SEEDS,
            max_len: 1024,
        },
        FuzzTarget {
            name: "tlssim_record",
            run: appvsweb_tlssim::fuzz::run,
            dict: appvsweb_tlssim::fuzz::DICT,
            seeds: appvsweb_tlssim::fuzz::SEEDS,
            max_len: 128,
        },
        FuzzTarget {
            name: "adblock_filter",
            run: appvsweb_adblock::fuzz::run,
            dict: appvsweb_adblock::fuzz::DICT,
            seeds: appvsweb_adblock::fuzz::SEEDS,
            max_len: 256,
        },
        FuzzTarget {
            name: "netsim_dns",
            run: appvsweb_netsim::fuzz::run,
            dict: appvsweb_netsim::fuzz::DICT,
            seeds: appvsweb_netsim::fuzz::SEEDS,
            max_len: 128,
        },
        FuzzTarget {
            name: "trace",
            run: appvsweb_obs::fuzz::run,
            dict: appvsweb_obs::fuzz::DICT,
            seeds: appvsweb_obs::fuzz::SEEDS,
            max_len: 1024,
        },
        FuzzTarget {
            name: "population",
            run: appvsweb_population::fuzz::run,
            dict: appvsweb_population::fuzz::DICT,
            seeds: appvsweb_population::fuzz::SEEDS,
            max_len: 1024,
        },
        FuzzTarget {
            name: "serve",
            run: appvsweb_serve::fuzz::run,
            dict: appvsweb_serve::fuzz::DICT,
            seeds: appvsweb_serve::fuzz::SEEDS,
            max_len: 1024,
        },
    ]
}

/// Look a target up by name.
pub fn find(name: &str) -> Option<FuzzTarget> {
    all().into_iter().find(|t| t.name == name)
}

/// The committed regression corpus directory for a target.
pub fn corpus_dir(name: &str) -> std::path::PathBuf {
    crate::repo_root().join("tests").join("corpus").join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_sorted_sets() {
        let names: Vec<&str> = all().iter().map(|t| t.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate target name");
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn every_target_survives_its_own_seeds_and_dict() {
        for target in all() {
            for seed in target.seeds {
                (target.run)(seed);
            }
            for token in target.dict {
                assert!(token.len() <= target.max_len);
                (target.run)(token);
            }
        }
    }
}
