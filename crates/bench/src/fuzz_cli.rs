//! The `repro fuzz` subcommand: drive the deterministic fuzzing engine
//! over the registered targets, persist discoveries to the committed
//! corpus, and emit `BENCH_testkit.json`.
//!
//! The engine itself never reads a clock; this module times each run
//! from outside, so `execs` / `edges` / discoveries are reproducible
//! while `execs_per_sec` reflects the machine it ran on.

use crate::fuzz_targets;
use appvsweb_json::Json;
use appvsweb_testkit::{fuzz, FuzzConfig, FuzzOutcome, FuzzTarget};
use std::time::Instant;

struct FuzzArgs {
    target: Option<String>,
    iters: Option<u64>,
    seed: u64,
    smoke: bool,
    minimize: bool,
}

/// Mutation iterations for `--smoke`: small enough for a CI gate on a
/// single core, large enough to exercise every mutator and the corpus.
const SMOKE_ITERS: u64 = 256;
/// Default mutation iterations for a full `repro fuzz` run.
const FULL_ITERS: u64 = 4_096;

fn parse(args: &[String]) -> Result<FuzzArgs, String> {
    let mut out = FuzzArgs {
        target: None,
        iters: None,
        seed: 2016,
        smoke: false,
        minimize: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => out.target = it.next().cloned(),
            "--iters" => {
                out.iters = match it.next().map(|v| v.parse()) {
                    Some(Ok(n)) => Some(n),
                    _ => return Err("--iters needs an integer".into()),
                }
            }
            "--seed" => {
                out.seed = match it.next().map(|v| v.parse()) {
                    Some(Ok(n)) => n,
                    _ => return Err("--seed needs an integer".into()),
                }
            }
            "--smoke" => out.smoke = true,
            "--minimize" => out.minimize = true,
            "--help" | "-h" => {
                return Err(
                    "usage: repro fuzz [--target NAME] [--iters N] [--seed N] [--smoke] \
                     [--minimize]"
                        .into(),
                )
            }
            other => return Err(format!("unknown fuzz argument: {other}")),
        }
    }
    Ok(out)
}

/// Entry point for `repro fuzz`. Returns the process exit code: 0 when
/// every target is clean, 1 when any corpus entry fails to replay or
/// mutation finds a new crash, 2 on usage errors.
pub fn run(args: &[String]) -> i32 {
    let parsed = match parse(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let targets: Vec<FuzzTarget> = match &parsed.target {
        None => fuzz_targets::all(),
        Some(name) => match fuzz_targets::find(name) {
            Some(target) => vec![target],
            None => {
                let known: Vec<&str> = fuzz_targets::all().iter().map(|t| t.name).collect();
                eprintln!("unknown target: {name} (known: {})", known.join(", "));
                return 2;
            }
        },
    };
    let cfg = FuzzConfig {
        seed: parsed.seed,
        iters: parsed.iters.unwrap_or(if parsed.smoke {
            SMOKE_ITERS
        } else {
            FULL_ITERS
        }),
        ..FuzzConfig::default()
    };

    let mut rows: Vec<Json> = Vec::new();
    let mut dirty = false;
    let t_all = Instant::now();
    for target in &targets {
        let dir = fuzz_targets::corpus_dir(target.name);
        let mut named = match fuzz::load_corpus_dir(&dir) {
            Ok(entries) => entries,
            Err(err) => {
                eprintln!(
                    "{}: cannot read corpus {}: {err}",
                    target.name,
                    dir.display()
                );
                return 2;
            }
        };
        if parsed.minimize {
            named = minimize_corpus(target, named, &dir);
        }
        let corpus: Vec<Vec<u8>> = named.iter().map(|(_, data)| data.clone()).collect();

        let t0 = Instant::now();
        let outcome = fuzz::fuzz(target, &corpus, &cfg);
        let wall = t0.elapsed();
        report(target, &outcome, &named, wall.as_secs_f64());
        if !outcome.is_clean() {
            dirty = true;
        }

        // Persist discoveries outside smoke mode: they replayed cleanly
        // (a discovery is by definition a non-crashing input), so they
        // extend the committed regression corpus.
        if !parsed.smoke && !outcome.discoveries.is_empty() {
            if let Err(err) = persist(&dir, &outcome.discoveries) {
                eprintln!("{}: cannot write corpus: {err}", target.name);
                return 2;
            }
        }
        rows.push(row_json(&outcome, corpus.len(), wall.as_secs_f64()));
    }

    let artifact = Json::Obj(vec![
        ("suite".into(), Json::Str("testkit_fuzz".into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("seed".into(), Json::Uint(cfg.seed)),
                ("iters".into(), Json::Uint(cfg.iters)),
                ("smoke".into(), Json::Bool(parsed.smoke)),
            ]),
        ),
        ("targets".into(), Json::Arr(rows)),
        (
            "wall_ms_total".into(),
            Json::Float(t_all.elapsed().as_secs_f64() * 1e3),
        ),
    ]);
    let path = crate::repo_root().join("BENCH_testkit.json");
    if let Err(err) = std::fs::write(&path, artifact.to_pretty() + "\n") {
        eprintln!("cannot write {}: {err}", path.display());
        return 2;
    }
    eprintln!("fuzz artifact written to {}", path.display());

    if dirty {
        eprintln!("fuzz: FAIL (crash or non-reproducing corpus entry above)");
        1
    } else {
        0
    }
}

/// Distill the corpus: keep only entries that add coverage beyond the
/// built-in seeds, delete the rest from disk, and return the survivors.
fn minimize_corpus(
    target: &FuzzTarget,
    named: Vec<(String, Vec<u8>)>,
    dir: &std::path::Path,
) -> Vec<(String, Vec<u8>)> {
    let keep = fuzz::distill(target, &named);
    // `regress-*` entries pin previously fixed bugs; they stay committed
    // whether or not they still add coverage beyond the seeds.
    let (kept, dropped): (Vec<_>, Vec<_>) = named
        .into_iter()
        .partition(|(name, _)| name.starts_with("regress-") || keep.contains(name));
    for (name, _) in &dropped {
        let path = dir.join(name);
        if let Err(err) = std::fs::remove_file(&path) {
            eprintln!("{}: cannot remove {}: {err}", target.name, path.display());
        }
    }
    if !dropped.is_empty() {
        println!(
            "{:<16} minimize: dropped {} redundant corpus entries, kept {}",
            target.name,
            dropped.len(),
            kept.len()
        );
    }
    kept
}

/// Write each discovery as `<fnv1a-hash>.bin`; content-addressed names
/// dedupe re-discoveries across runs for free.
fn persist(dir: &std::path::Path, discoveries: &[Vec<u8>]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for data in discoveries {
        let name = format!("{:016x}.bin", fuzz::content_hash(data));
        std::fs::write(dir.join(name), data)?;
    }
    Ok(())
}

fn report(target: &FuzzTarget, outcome: &FuzzOutcome, named: &[(String, Vec<u8>)], secs: f64) {
    let eps = if secs > 0.0 {
        outcome.execs as f64 / secs
    } else {
        0.0
    };
    println!(
        "{:<16} execs {:>6}  edges {:>4}  corpus {:>3}  new {:>3}  {:>9.0} execs/sec",
        target.name,
        outcome.execs,
        outcome.edges,
        outcome.corpus_in,
        outcome.discoveries.len(),
        eps
    );
    for crash in &outcome.replay_crashes {
        let name = named
            .iter()
            .find(|(_, data)| data == &crash.input)
            .map(|(name, _)| name.as_str())
            .unwrap_or("<built-in seed>");
        println!(
            "  REPLAY CRASH {name}: {} ({} bytes)",
            crash.message,
            crash.input.len()
        );
    }
    for crash in &outcome.crashes {
        println!(
            "  CRASH: {} (minimized {} -> {} bytes): {:?}",
            crash.message,
            crash.original_len,
            crash.input.len(),
            String::from_utf8_lossy(&crash.input)
        );
    }
}

fn row_json(outcome: &FuzzOutcome, corpus_files: usize, secs: f64) -> Json {
    Json::Obj(vec![
        ("target".into(), Json::Str(outcome.target.clone())),
        ("execs".into(), Json::Uint(outcome.execs)),
        ("edges".into(), Json::Uint(outcome.edges)),
        ("corpus_files".into(), Json::Uint(corpus_files as u64)),
        ("corpus_in".into(), Json::Uint(outcome.corpus_in as u64)),
        (
            "discoveries".into(),
            Json::Uint(outcome.discoveries.len() as u64),
        ),
        (
            "replay_crashes".into(),
            Json::Uint(outcome.replay_crashes.len() as u64),
        ),
        ("crashes".into(), Json::Uint(outcome.crashes.len() as u64)),
        (
            "execs_per_sec".into(),
            Json::Float(if secs > 0.0 {
                outcome.execs as f64 / secs
            } else {
                0.0
            }),
        ),
        ("wall_ms".into(), Json::Float(secs * 1e3)),
    ])
}
