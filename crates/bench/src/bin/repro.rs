//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro --all                 # everything: tables 1-3, figures 1a-1f, duration control
//! repro --table 1             # one table
//! repro --figure 1d           # one figure (plot-ready series + ASCII preview)
//! repro --duration            # the §3.2 4-vs-10-minute control
//! repro --headlines           # the paper's headline statistics
//! repro --json study.json     # export the dataset (the paper publishes its data too)
//! repro --seed 7 --minutes 4  # alternate experiment parameters
//! repro --faults moderate     # fault-sweep: run the campaign degraded
//! repro lint --check          # determinism/robustness lint vs the baseline
//! repro fuzz --smoke          # coverage-guided fuzz smoke gate (CI)
//! repro fuzz --target json    # fuzz one parser, grow its corpus
//! repro trace --cell amazon/Android/App   # span tree of one cell
//! repro metrics --check       # metrics dump / conservation-law gate
//! repro population --users 100000         # population-scale campaign (Tables 3-5 at scale)
//! repro population --smoke    # 1k-user determinism gate (CI)
//! repro serve --listen 8080   # supervised resident service (submit/status/report/drift)
//! repro serve --smoke         # crash/recover/drift determinism gate (CI)
//! ```

use appvsweb_analysis::figures::{self, FigureId};
use appvsweb_analysis::render;
use appvsweb_analysis::tables;
use appvsweb_analysis::Study;
use appvsweb_core::dataset;
use appvsweb_core::duration::{default_duration_services, duration_experiment};
use appvsweb_core::study::{run_study, StudyConfig};
use appvsweb_netsim::{FaultPlan, Os, SimDuration};

struct Args {
    table: Option<u8>,
    figure: Option<String>,
    duration: bool,
    headlines: bool,
    all: bool,
    json: Option<String>,
    report: Option<String>,
    seed: u64,
    minutes: u64,
    faults: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        table: None,
        figure: None,
        duration: false,
        headlines: false,
        all: false,
        json: None,
        report: None,
        seed: 2016,
        minutes: 4,
        faults: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--table" => args.table = it.next().and_then(|v| v.parse().ok()),
            "--figure" => args.figure = it.next(),
            "--duration" => args.duration = true,
            "--headlines" => args.headlines = true,
            "--all" => args.all = true,
            "--json" => args.json = it.next(),
            "--report" => args.report = it.next(),
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(2016),
            "--minutes" => args.minutes = it.next().and_then(|v| v.parse().ok()).unwrap_or(4),
            "--faults" => args.faults = it.next(),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--all] [--table N] [--figure 1a..1f] [--duration] \
                     [--headlines] [--json FILE] [--report FILE] [--seed N] [--minutes N] \
                     [--faults none|light|moderate|heavy]\n       repro lint [--check] \
                     [--json] [--fix-baseline] [--labels]\n       repro fuzz [--target NAME] \
                     [--iters N] [--seed N] [--smoke] [--minimize]\n       repro trace \
                     [--cell SERVICE/OS/MEDIUM]\n       repro metrics [--check]\n       \
                     repro population [--users N] [--shards N] [--workers N] [--seed N] \
                     [--minutes N] [--smoke] [--json FILE]\n       repro serve [--smoke] \
                     [--demo] [--listen PORT] [--dir PATH] [--workers N] [--max-requests N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.table.is_none()
        && args.figure.is_none()
        && !args.duration
        && !args.headlines
        && args.json.is_none()
        && args.report.is_none()
    {
        args.all = true;
    }
    args
}

fn figure_id(label: &str) -> Option<FigureId> {
    Some(match label {
        "1a" => FigureId::AaDomains,
        "1b" => FigureId::AaFlows,
        "1c" => FigureId::AaBytes,
        "1d" => FigureId::LeakDomains,
        "1e" => FigureId::LeakedIdentifiers,
        "1f" => FigureId::Jaccard,
        _ => return None,
    })
}

fn print_headlines(study: &Study) {
    println!("== Headline statistics (paper §1 / §4) ==");
    for os in [Os::Android, Os::Ios] {
        let f1a = figures::cdf(study, FigureId::AaDomains, os);
        println!(
            "{os}: {:.0}% of services contact more A&A domains via Web than app \
             (paper: 83% Android / 78% iOS)",
            f1a.fraction_negative() * 100.0
        );
        let f1b = figures::cdf(study, FigureId::AaFlows, os);
        println!(
            "{os}: {:.0}% of services open more TCP flows to A&A via Web \
             (paper: 73% Android / 80% iOS)",
            f1b.fraction_negative() * 100.0
        );
        let f1f = figures::cdf(study, FigureId::Jaccard, os);
        println!(
            "{os}: {:.0}% of services share NO leaked PII types between app and Web \
             (paper: more than half)",
            f1f.at(0.0) * 100.0
        );
        let f1e = figures::pdf_1e(study, os);
        println!(
            "{os}: modal (app - web) leaked-identifier difference = {:+} \
             (paper: +1), {:.0}% of mass at positive values",
            f1e.mode().unwrap_or(0),
            f1e.positive_mass()
        );
    }
    let t1 = tables::table1(study);
    let pct = |group: &str, medium| {
        t1.rows
            .iter()
            .find(|r| r.group == group && r.medium == medium)
            .map(|r| r.pct_leaking * 100.0)
            .unwrap_or(0.0)
    };
    use appvsweb_services::Medium;
    println!(
        "services leaking via app: {:.0}% (paper 92%); via Web: {:.0}% (paper 78%)",
        pct("All", Medium::App),
        pct("All", Medium::Web)
    );
    println!(
        "Android Web leak rate {:.1}% vs iOS Web {:.1}% (paper: 52.1% vs 76%)",
        pct("Android", Medium::Web),
        pct("iOS", Medium::Web)
    );
    println!();
}

fn main() {
    // `repro lint [...]` delegates to the workspace analyzer; everything
    // after the subcommand is passed through (`--check`, `--json`, …).
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("lint") {
        std::process::exit(appvsweb_lint::cli::run(&argv[1..]));
    }
    // `repro fuzz [...]` drives the deterministic coverage-guided fuzzer
    // over the registered parser targets and the committed corpus.
    if argv.first().map(String::as_str) == Some("fuzz") {
        std::process::exit(appvsweb_bench::fuzz_cli::run(&argv[1..]));
    }
    // `repro trace` / `repro metrics` surface the observability layer.
    if argv.first().map(String::as_str) == Some("trace") {
        std::process::exit(appvsweb_bench::obs_cli::run_trace(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("metrics") {
        std::process::exit(appvsweb_bench::obs_cli::run_metrics(&argv[1..]));
    }
    // `repro population` scales the measured study to 10k-1M users.
    if argv.first().map(String::as_str) == Some("population") {
        std::process::exit(appvsweb_bench::population_cli::run(&argv[1..]));
    }
    // `repro serve` runs the supervised resident service (or its
    // crash/recover smoke gate and drift-alarm demo).
    if argv.first().map(String::as_str) == Some("serve") {
        std::process::exit(appvsweb_bench::serve_cli::run(&argv[1..]));
    }
    let args = parse_args();
    let faults = match args.faults.as_deref() {
        None => FaultPlan::none(),
        Some(name) => FaultPlan::preset(name).unwrap_or_else(|| {
            eprintln!("unknown fault preset: {name} (use none|light|moderate|heavy)");
            std::process::exit(2);
        }),
    };
    let cfg = StudyConfig {
        seed: args.seed,
        duration: SimDuration::from_mins(args.minutes),
        faults,
        ..StudyConfig::default()
    };
    eprintln!(
        "running the full study: 50 services x 2 OSes x 2 media, {} min sessions, seed {} ...",
        args.minutes, args.seed
    );
    let t0 = std::time::Instant::now();
    let study = run_study(&cfg);
    eprintln!(
        "study completed in {:.2?} ({} cells)\n",
        t0.elapsed(),
        study.cells.len()
    );
    if !cfg.faults.is_none() || !study.health.is_complete() {
        println!("== Campaign health ==");
        println!("{}", study.health.summary());
        if !study.health.failures.is_empty() {
            println!("failed cells:");
            for failure in &study.health.failures {
                println!("  {}: {}", failure.cell, failure.error);
            }
        }
        println!();
    }

    if args.all || args.headlines {
        print_headlines(&study);
    }
    if args.all || args.table == Some(1) {
        println!("== Table 1: services by OS and category ==");
        println!("{}", render::render_table1(&tables::table1(&study)));
    }
    if args.all || args.table == Some(2) {
        println!("== Table 2: top-20 A&A domains by total leaks ==");
        println!("{}", render::render_table2(&tables::table2(&study, 20)));
    }
    if args.all || args.table == Some(3) {
        println!("== Table 3: PII types by total leaks ==");
        println!("{}", render::render_table3(&tables::table3(&study)));
    }

    let figure_filter: Option<FigureId> = args.figure.as_deref().and_then(figure_id);
    if args.figure.is_some() && figure_filter.is_none() {
        eprintln!("unknown figure (use 1a..1f)");
        std::process::exit(2);
    }
    for id in FigureId::ALL {
        if (args.all && figure_filter.is_none()) || figure_filter == Some(id) {
            let fig = figures::figure(&study, id);
            println!("{}", render::ascii_plot(&fig, 64, 12));
            println!("{}", render::render_figure(&fig));
        }
    }

    if args.all || args.duration {
        println!("== Duration control (§3.2): 4- vs 10-minute sessions ==");
        let results = duration_experiment(
            &default_duration_services(),
            Os::Android,
            SimDuration::from_mins(4),
            SimDuration::from_mins(10),
            &cfg,
        );
        println!(
            "{:<18} {:>8} {:>8} {:>7}  new PII types in longer run",
            "service", "4min", "10min", "ratio"
        );
        for r in &results {
            println!(
                "{:<18} {:>8} {:>8} {:>7.2}  {:?}",
                r.service_id,
                r.short_leaks,
                r.long_leaks,
                r.leak_ratio(),
                r.new_types()
            );
        }
        println!();
    }

    if let Some(path) = &args.json {
        std::fs::write(path, dataset::to_json(&study)).expect("write dataset");
        eprintln!("dataset written to {path}");
    }
    if let Some(path) = &args.report {
        std::fs::write(path, appvsweb_analysis::report::markdown_report(&study))
            .expect("write report");
        eprintln!("markdown report written to {path}");
    }
}
