//! Observability overhead bench: the full quick campaign with the
//! instrumentation idle, and again with a journal capture running.
//!
//! Emits `BENCH_obs.json` at the repo root. The `meta` block compares
//! the idle-instrumentation campaign against the committed
//! `BENCH_pipeline.json` baseline (`full_campaign_1min_sessions`):
//! `idle_overhead_pct` is the cost of the compiled-in-but-dormant
//! counters and must stay under the 3% budget, and
//! `capture_overhead_pct` is the cost of recording a full 196-cell
//! journal. Machine throughput drifts between sessions by far more
//! than the budget, so the cross-artifact percentages are only
//! meaningful when both artifacts were regenerated back-to-back —
//! regenerate `study_pipeline` first, then this bench.
//! `capture_vs_idle_pct` is intra-process and robust on its own.

use appvsweb_bench::{quick_config, repo_root};
use appvsweb_core::study::run_study;
use appvsweb_json::Json;
use appvsweb_testkit::BenchRunner;

fn main() {
    let cfg = quick_config();
    let mut runner = BenchRunner::new("obs").with_samples(1, 10);

    // Instrumentation compiled in but no capture armed: every obs site
    // costs one constant-folded feature test plus relaxed atomics.
    runner.bench("full_campaign_idle", || run_study(&cfg));

    // The same campaign with every cell journaled end to end.
    runner.bench("full_campaign_captured", || {
        appvsweb_obs::capture_begin();
        let study = run_study(&cfg);
        let journal = appvsweb_obs::capture_end();
        (study, journal)
    });

    let median = |name: &str| {
        runner
            .results()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    };
    let idle = median("full_campaign_idle");
    let captured = median("full_campaign_captured");
    if let (Some(idle), Some(captured)) = (idle, captured) {
        runner.meta("capture_vs_idle_pct", (captured / idle - 1.0) * 100.0);
    }
    if let Some(baseline) = pipeline_baseline() {
        runner.meta("baseline_pipeline_median_ns", baseline);
        if let Some(idle) = idle {
            runner.meta("idle_overhead_pct", (idle / baseline - 1.0) * 100.0);
        }
        if let Some(captured) = captured {
            runner.meta("capture_overhead_pct", (captured / baseline - 1.0) * 100.0);
        }
    }

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}

/// Median ns of `full_campaign_1min_sessions` from the committed
/// pipeline bench artifact, if present and well-formed.
fn pipeline_baseline() -> Option<f64> {
    let text = std::fs::read_to_string(repo_root().join("BENCH_pipeline.json")).ok()?;
    let doc = appvsweb_json::parse(&text).ok()?;
    doc.get("results")?
        .items()
        .ok()?
        .iter()
        .find(|row| {
            matches!(row.get("name"), Some(Json::Str(s)) if s == "full_campaign_1min_sessions")
        })
        .and_then(|row| row.field::<f64>("median_ns").ok())
}
