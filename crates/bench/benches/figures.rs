//! Benches that regenerate Figures 1a–1f of the paper.
//!
//! One bench per subfigure; each prints its plot-ready series (and an
//! ASCII preview) once, then measures the series computation.

use appvsweb_analysis::figures::{self, FigureId};
use appvsweb_analysis::render;
use appvsweb_bench::{repo_root, shared_study};
use appvsweb_testkit::BenchRunner;

fn main() {
    let study = shared_study();
    let mut runner = BenchRunner::new("figures").with_samples(2, 20);
    for id in FigureId::ALL {
        let fig = figures::figure(study, id);
        println!("\n{}", render::ascii_plot(&fig, 64, 12));
        let name = match id {
            FigureId::AaDomains => "fig1a_aa_domains",
            FigureId::AaFlows => "fig1b_aa_flows",
            FigureId::AaBytes => "fig1c_aa_bytes",
            FigureId::LeakDomains => "fig1d_leak_domains",
            FigureId::LeakedIdentifiers => "fig1e_leaked_identifiers",
            FigureId::Jaccard => "fig1f_jaccard",
        };
        runner.bench(name, || figures::figure(study, id));
    }
    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
