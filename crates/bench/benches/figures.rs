//! Benches that regenerate Figures 1a–1f of the paper.
//!
//! One bench per subfigure; each prints its plot-ready series (and an
//! ASCII preview) once, then measures the series computation.

use appvsweb_analysis::figures::{self, FigureId};
use appvsweb_analysis::render;
use appvsweb_bench::shared_study;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let study = shared_study();
    for id in FigureId::ALL {
        let fig = figures::figure(study, id);
        println!("\n{}", render::ascii_plot(&fig, 64, 12));
        let name = match id {
            FigureId::AaDomains => "fig1a_aa_domains",
            FigureId::AaFlows => "fig1b_aa_flows",
            FigureId::AaBytes => "fig1c_aa_bytes",
            FigureId::LeakDomains => "fig1d_leak_domains",
            FigureId::LeakedIdentifiers => "fig1e_leaked_identifiers",
            FigureId::Jaccard => "fig1f_jaccard",
        };
        c.bench_function(name, |b| {
            b.iter(|| black_box(figures::figure(black_box(study), id)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
