//! Benchmarks the `appvsweb-lint` analyzer over the real workspace:
//! lexing alone, then the full pipeline (annotations, test regions,
//! every rule, cross-file D3). The artifact's `meta` block records scan
//! size, derived throughput, and the finding counts per rule, so the
//! lint's cost and the workspace's debt are both tracked per PR.

use appvsweb_bench::repo_root;
use appvsweb_json::Json;
use appvsweb_lint::{analyze_files, collect_workspace, lex};
use appvsweb_testkit::BenchRunner;

fn main() {
    let root = repo_root();
    let files = collect_workspace(&root).expect("workspace readable");
    let report = analyze_files(&files);
    println!(
        "lint: {} files, {} tokens, {} findings, {} labels",
        report.files,
        report.tokens,
        report.findings.len(),
        report.labels.len()
    );

    let mut runner = BenchRunner::new("lint").with_samples(2, 10);
    runner.bench("lex_workspace", || {
        files.iter().map(|f| lex(&f.text).len()).sum::<usize>()
    });
    runner.bench("analyze_workspace", || analyze_files(&files));

    runner.meta("files_scanned", report.files);
    runner.meta("tokens", report.tokens);
    runner.meta("labels", report.labels.len() as u64);
    let analyze_ns = runner
        .results()
        .iter()
        .find(|r| r.name == "analyze_workspace")
        .map(|r| r.median_ns)
        .unwrap_or(f64::NAN);
    runner.meta(
        "tokens_per_sec",
        (report.tokens as f64 / (analyze_ns / 1e9)).round(),
    );
    runner.meta(
        "findings_by_rule",
        Json::Obj(
            report
                .counts_by_rule()
                .into_iter()
                .map(|(rule, n)| (rule, Json::Uint(n)))
                .collect(),
        ),
    );

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
