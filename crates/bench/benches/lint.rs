//! Benchmarks the `appvsweb-lint` analyzer over the real workspace,
//! phase by phase: lexing alone, the per-file parse (item tables), the
//! call-graph build, the interprocedural passes, and the full pipeline
//! both cold (no cache) and warm (content-hash cache hit on every
//! file). The artifact's `meta` block records scan size, derived
//! throughput, and the per-rule finding counts — open *and*
//! suppressed-by-allow — so the lint's cost and the workspace's debt
//! are both tracked per PR.

use appvsweb_bench::repo_root;
use appvsweb_json::Json;
use appvsweb_lint::{
    analyze_files, analyze_files_with, analyze_one, collect_workspace, lex, AnalysisOptions,
};
use appvsweb_testkit::BenchRunner;
use std::collections::BTreeMap;

fn main() {
    let root = repo_root();
    let files = collect_workspace(&root).expect("workspace readable");
    let report = analyze_files(&files);
    println!(
        "lint: {} files, {} tokens, {} findings, {} labels",
        report.files,
        report.tokens,
        report.findings.len(),
        report.labels.len()
    );

    // Shared inputs for the phase benches.
    let analyses: Vec<_> = files.iter().map(analyze_one).collect();
    let tables: Vec<_> = analyses.iter().map(|a| a.table.clone()).collect();
    let cache_dir = root.join("target").join("lint-cache-bench");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let warm_opts = AnalysisOptions {
        workers: 1,
        cache_dir: Some(cache_dir.clone()),
    };
    analyze_files_with(&files, &warm_opts); // prime the cache

    let mut runner = BenchRunner::new("lint").with_samples(2, 10);
    runner.bench("lex_workspace", || {
        files.iter().map(|f| lex(&f.text).len()).sum::<usize>()
    });
    runner.bench("parse_workspace", || {
        files
            .iter()
            .map(|f| analyze_one(f).table.fns.len())
            .sum::<usize>()
    });
    runner.bench("callgraph", || {
        appvsweb_lint::callgraph::CallGraph::build(&tables)
            .fns
            .len()
    });
    runner.bench("analyze_workspace", || analyze_files(&files));
    runner.bench("analyze_workspace_warm", || {
        analyze_files_with(&files, &warm_opts)
    });
    let _ = std::fs::remove_dir_all(&cache_dir);

    runner.meta("files_scanned", report.files);
    runner.meta("tokens", report.tokens);
    runner.meta("labels", report.labels.len() as u64);
    runner.meta("allows", report.allows);
    let analyze_ns = runner
        .results()
        .iter()
        .find(|r| r.name == "analyze_workspace")
        .map(|r| r.median_ns)
        .unwrap_or(f64::NAN);
    runner.meta(
        "tokens_per_sec",
        (report.tokens as f64 / (analyze_ns / 1e9)).round(),
    );

    // Per-rule debt: open findings and allow-suppressed sites, in one
    // object so a PR that trades one for the other is visible.
    let mut by_rule: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (rule, n) in report.counts_by_rule() {
        by_rule.entry(rule).or_default().0 = n;
    }
    for rc in &report.suppressed {
        by_rule.entry(rc.rule.clone()).or_default().1 = rc.count;
    }
    runner.meta(
        "findings_by_rule",
        Json::Obj(
            by_rule
                .into_iter()
                .map(|(rule, (open, suppressed))| {
                    (
                        rule,
                        Json::Obj(vec![
                            ("open".to_string(), Json::Uint(open)),
                            ("suppressed".to_string(), Json::Uint(suppressed)),
                        ]),
                    )
                })
                .collect(),
        ),
    );

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
