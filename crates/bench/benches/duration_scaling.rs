//! The §3.2 duration control as a bench: leak counts scale with session
//! length, PII types plateau. Prints the comparison table once.

use appvsweb_bench::{quick_config, repo_root};
use appvsweb_core::duration::{default_duration_services, duration_experiment};
use appvsweb_netsim::{Os, SimDuration};
use appvsweb_testkit::BenchRunner;

fn main() {
    let cfg = quick_config();
    let services = default_duration_services();

    let results = duration_experiment(
        &services,
        Os::Android,
        SimDuration::from_mins(4),
        SimDuration::from_mins(10),
        &cfg,
    );
    println!("\n== Duration control: 4 vs 10 minutes (regenerated) ==");
    println!(
        "{:<18} {:>8} {:>8} {:>7}  new-types",
        "service", "4min", "10min", "ratio"
    );
    for r in &results {
        println!(
            "{:<18} {:>8} {:>8} {:>7.2}  {:?}",
            r.service_id,
            r.short_leaks,
            r.long_leaks,
            r.leak_ratio(),
            r.new_types()
        );
    }

    // Bench a two-service subset so iterations stay affordable.
    let mut runner = BenchRunner::new("duration").with_samples(1, 10);
    runner.bench("duration_4v10_two_services", || {
        duration_experiment(
            &["weather-channel", "streamflix"],
            Os::Android,
            SimDuration::from_mins(4),
            SimDuration::from_mins(10),
            &cfg,
        )
    });
    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
