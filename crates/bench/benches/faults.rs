//! Fault-injection overhead bench: the full 196-cell campaign at 0%,
//! 1%, and 5% fault rates (1-minute sessions, no ReCon).
//!
//! Emits `BENCH_faults.json` at the repo root. The 0% row doubles as a
//! regression guard on the chaos substrate itself: an unarmed injector
//! must cost nothing measurable over the pre-chaos pipeline.

use appvsweb_bench::{quick_config, repo_root};
use appvsweb_core::study::{run_study, StudyConfig};
use appvsweb_netsim::FaultPlan;
use appvsweb_testkit::BenchRunner;

fn main() {
    let mut runner = BenchRunner::new("faults").with_samples(1, 5);
    for (label, plan) in [
        ("campaign_1min_faults_0pct", FaultPlan::none()),
        ("campaign_1min_faults_1pct", FaultPlan::light()),
        ("campaign_1min_faults_5pct", FaultPlan::moderate()),
    ] {
        let cfg = StudyConfig {
            faults: plan,
            ..quick_config()
        };
        runner.bench(label, || run_study(&cfg));
    }
    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
