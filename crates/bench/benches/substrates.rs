//! Micro-benches for the substrate layers: codecs, hashes, wire parsing,
//! the EasyList matcher, the decision-tree learner, and the ground-truth
//! scanner. These are the components whose costs dominate a study run.

use appvsweb_adblock::FilterEngine;
use appvsweb_httpsim::{codec, wire, Body, Request, Url};
use appvsweb_pii::recon::{DecisionTree, TreeConfig};
use appvsweb_pii::{hash, GroundTruth, GroundTruthMatcher};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_codecs(c: &mut Criterion) {
    let text = "jane.conner.4821@testmail.example lat=42.361145 lon=-71.057083";
    c.bench_function("percent_encode", |b| {
        b.iter(|| black_box(codec::percent_encode(black_box(text))))
    });
    let data = vec![0xABu8; 1024];
    c.bench_function("base64_encode_1k", |b| {
        b.iter(|| black_box(codec::base64_encode(black_box(&data))))
    });
    let encoded = codec::base64_encode(&data);
    c.bench_function("base64_decode_1k", |b| {
        b.iter(|| black_box(codec::base64_decode(black_box(&encoded))))
    });
}

fn bench_hashes(c: &mut Criterion) {
    let email = b"jane.conner.4821@testmail.example";
    c.bench_function("md5_email", |b| b.iter(|| black_box(hash::md5(black_box(email)))));
    c.bench_function("sha1_email", |b| b.iter(|| black_box(hash::sha1(black_box(email)))));
    c.bench_function("sha256_email", |b| {
        b.iter(|| black_box(hash::sha256(black_box(email))))
    });
    let blob = vec![0x5Au8; 64 * 1024];
    c.bench_function("sha256_64k", |b| b.iter(|| black_box(hash::sha256(black_box(&blob)))));
}

fn bench_wire(c: &mut Criterion) {
    let req = Request::post(
        Url::parse("https://api.example.com/v1/track?uid=abc&lat=42.36").unwrap(),
        Body::form(&[("email", "user@example.com"), ("ev", "init")]),
    )
    .with_user_agent("ExampleApp/4.1 (Android; Nexus 5)");
    let bytes = wire::serialize_request(&req);
    c.bench_function("wire_serialize_request", |b| {
        b.iter(|| black_box(wire::serialize_request(black_box(&req))))
    });
    c.bench_function("wire_parse_request", |b| {
        b.iter(|| black_box(wire::parse_request(black_box(&bytes), true).unwrap()))
    });
}

fn bench_adblock(c: &mut Criterion) {
    let engine = FilterEngine::with_bundled_list();
    let urls = [
        "https://www.google-analytics.com/collect?v=1&tid=UA-1",
        "https://ads.g.doubleclick.net/pagead/adview?ai=xyz",
        "https://www.weather.com/today/l/02138",
        "https://cdn.static.example/app.css",
    ];
    c.bench_function("adblock_check_4urls", |b| {
        b.iter(|| {
            for u in &urls {
                black_box(engine.is_ad_or_tracking(black_box(u), "weather.com"));
            }
        })
    });
}

fn bench_matcher(c: &mut Criterion) {
    let truth = GroundTruth::synthetic(2016).with_device(
        "Nexus 5",
        &[("imei", "354436069633711"), ("ad_id", "9d2a1f6c-0b51-4ef2-a1b0-cc9e34ad8f01")],
        Some((42.361145, -71.057083)),
    );
    c.bench_function("matcher_build", |b| {
        b.iter(|| black_box(GroundTruthMatcher::new(black_box(&truth))))
    });
    let matcher = GroundTruthMatcher::new(&truth);
    let clean = "GET /api/v2/content/7 HTTP/1.1\nHost: api.weather.com\nAccept: */*";
    let dirty = format!(
        "GET /pixel?gaid={}&lat=42.3611&email={} HTTP/1.1\nHost: t.example",
        truth.device_ids[1].1, truth.email
    );
    c.bench_function("matcher_scan_clean_flow", |b| {
        b.iter(|| black_box(matcher.scan(black_box(clean))))
    });
    c.bench_function("matcher_scan_leaky_flow", |b| {
        b.iter(|| black_box(matcher.scan(black_box(&dirty))))
    });
}

fn bench_decision_tree(c: &mut Criterion) {
    let examples: Vec<(BTreeSet<String>, bool)> = (0..200)
        .map(|i| {
            let mut set: BTreeSet<String> =
                ["get", "http", "host", "v1"].iter().map(|s| s.to_string()).collect();
            set.insert(format!("tok{}", i % 17));
            let positive = i % 3 == 0;
            if positive {
                set.insert("email".into());
            }
            (set, positive)
        })
        .collect();
    c.bench_function("decision_tree_train_200", |b| {
        b.iter(|| black_box(DecisionTree::train(black_box(&examples), &TreeConfig::default())))
    });
    let tree = DecisionTree::train(&examples, &TreeConfig::default());
    c.bench_function("decision_tree_predict", |b| {
        b.iter(|| black_box(tree.predict(black_box(&examples[0].0))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_codecs, bench_hashes, bench_wire, bench_adblock, bench_matcher, bench_decision_tree
}
criterion_main!(benches);
