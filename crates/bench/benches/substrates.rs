//! Micro-benches for the substrate layers: codecs, hashes, wire parsing,
//! the EasyList matcher, the decision-tree learner, and the ground-truth
//! scanner. These are the components whose costs dominate a study run.

use appvsweb_adblock::FilterEngine;
use appvsweb_bench::repo_root;
use appvsweb_httpsim::{codec, wire, Body, Request, Url};
use appvsweb_pii::recon::{DecisionTree, TreeConfig};
use appvsweb_pii::{hash, GroundTruth, GroundTruthMatcher};
use appvsweb_testkit::BenchRunner;
use std::collections::BTreeSet;

fn bench_codecs(runner: &mut BenchRunner) {
    let text = "jane.conner.4821@testmail.example lat=42.361145 lon=-71.057083";
    runner.bench("percent_encode", || codec::percent_encode(text));
    let data = vec![0xABu8; 1024];
    runner.bench("base64_encode_1k", || codec::base64_encode(&data));
    let encoded = codec::base64_encode(&data);
    runner.bench("base64_decode_1k", || codec::base64_decode(&encoded));
}

fn bench_hashes(runner: &mut BenchRunner) {
    let email = b"jane.conner.4821@testmail.example";
    runner.bench("md5_email", || hash::md5(email));
    runner.bench("sha1_email", || hash::sha1(email));
    runner.bench("sha256_email", || hash::sha256(email));
    let blob = vec![0x5Au8; 64 * 1024];
    runner.bench("sha256_64k", || hash::sha256(&blob));
}

fn bench_wire(runner: &mut BenchRunner) {
    let req = Request::post(
        Url::parse("https://api.example.com/v1/track?uid=abc&lat=42.36").unwrap(),
        Body::form(&[("email", "user@example.com"), ("ev", "init")]),
    )
    .with_user_agent("ExampleApp/4.1 (Android; Nexus 5)");
    let bytes = wire::serialize_request(&req);
    runner.bench("wire_serialize_request", || wire::serialize_request(&req));
    runner.bench("wire_parse_request", || {
        wire::parse_request(&bytes, true).unwrap()
    });
}

fn bench_adblock(runner: &mut BenchRunner) {
    let engine = FilterEngine::with_bundled_list();
    let urls = [
        "https://www.google-analytics.com/collect?v=1&tid=UA-1",
        "https://ads.g.doubleclick.net/pagead/adview?ai=xyz",
        "https://www.weather.com/today/l/02138",
        "https://cdn.static.example/app.css",
    ];
    runner.bench("adblock_check_4urls", || {
        urls.iter()
            .filter(|u| engine.is_ad_or_tracking(u, "weather.com"))
            .count()
    });
}

fn bench_matcher(runner: &mut BenchRunner) {
    let truth = GroundTruth::synthetic(2016).with_device(
        "Nexus 5",
        &[
            ("imei", "354436069633711"),
            ("ad_id", "9d2a1f6c-0b51-4ef2-a1b0-cc9e34ad8f01"),
        ],
        Some((42.361145, -71.057083)),
    );
    runner.bench("matcher_build", || GroundTruthMatcher::new(&truth));
    let matcher = GroundTruthMatcher::new(&truth);
    let clean = "GET /api/v2/content/7 HTTP/1.1\nHost: api.weather.com\nAccept: */*";
    let dirty = format!(
        "GET /pixel?gaid={}&lat=42.3611&email={} HTTP/1.1\nHost: t.example",
        truth.device_ids[1].1, truth.email
    );
    runner.bench("matcher_scan_clean_flow", || matcher.scan(clean));
    runner.bench("matcher_scan_leaky_flow", || matcher.scan(&dirty));
}

fn bench_decision_tree(runner: &mut BenchRunner) {
    let examples: Vec<(BTreeSet<String>, bool)> = (0..200)
        .map(|i| {
            let mut set: BTreeSet<String> = ["get", "http", "host", "v1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            set.insert(format!("tok{}", i % 17));
            let positive = i % 3 == 0;
            if positive {
                set.insert("email".into());
            }
            (set, positive)
        })
        .collect();
    runner.bench("decision_tree_train_200", || {
        DecisionTree::train(&examples, &TreeConfig::default())
    });
    let tree = DecisionTree::train(&examples, &TreeConfig::default());
    runner.bench("decision_tree_predict", || tree.predict(&examples[0].0));
}

fn main() {
    let mut runner = BenchRunner::new("substrates");
    bench_codecs(&mut runner);
    bench_hashes(&mut runner);
    bench_wire(&mut runner);
    bench_adblock(&mut runner);
    bench_matcher(&mut runner);
    bench_decision_tree(&mut runner);
    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
