//! Benches that regenerate Tables 1–3 of the paper.
//!
//! Each bench measures the aggregation over the canonical full study
//! (50 services × 2 OSes × 2 media, 4-minute sessions, seed 2016) and
//! prints the regenerated table once, so `cargo bench` output contains
//! the actual reproduction artifacts.

use appvsweb_analysis::{render, tables};
use appvsweb_bench::{repo_root, shared_study};
use appvsweb_testkit::BenchRunner;

fn main() {
    let study = shared_study();
    let mut runner = BenchRunner::new("tables").with_samples(2, 20);

    println!("\n== Table 1 (regenerated) ==");
    println!("{}", render::render_table1(&tables::table1(study)));
    runner.bench("table1_build", || tables::table1(study));

    println!("\n== Table 2 (regenerated, top-20 A&A domains) ==");
    println!("{}", render::render_table2(&tables::table2(study, 20)));
    runner.bench("table2_build", || tables::table2(study, 20));

    println!("\n== Table 3 (regenerated, PII types) ==");
    println!("{}", render::render_table3(&tables::table3(study)));
    runner.bench("table3_build", || tables::table3(study));

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
