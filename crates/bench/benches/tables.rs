//! Benches that regenerate Tables 1–3 of the paper.
//!
//! Each bench measures the aggregation over the canonical full study
//! (50 services × 2 OSes × 2 media, 4-minute sessions, seed 2016) and
//! prints the regenerated table once, so `cargo bench` output contains
//! the actual reproduction artifacts.

use appvsweb_analysis::{render, tables};
use appvsweb_bench::shared_study;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let study = shared_study();
    println!("\n== Table 1 (regenerated) ==");
    println!("{}", render::render_table1(&tables::table1(study)));
    c.bench_function("table1_build", |b| {
        b.iter(|| black_box(tables::table1(black_box(study))))
    });
}

fn bench_table2(c: &mut Criterion) {
    let study = shared_study();
    println!("\n== Table 2 (regenerated, top-20 A&A domains) ==");
    println!("{}", render::render_table2(&tables::table2(study, 20)));
    c.bench_function("table2_build", |b| {
        b.iter(|| black_box(tables::table2(black_box(study), 20)))
    });
}

fn bench_table3(c: &mut Criterion) {
    let study = shared_study();
    println!("\n== Table 3 (regenerated, PII types) ==");
    println!("{}", render::render_table3(&tables::table3(study)));
    c.bench_function("table3_build", |b| {
        b.iter(|| black_box(tables::table3(black_box(study))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_table2, bench_table3
}
criterion_main!(benches);
