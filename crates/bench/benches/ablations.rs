//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Detection arms** — matcher-only vs ReCon-only vs the paper's
//!    combined pipeline, over the same captured corpus. The paper
//!    combines them because "knowing the PII in advance is not a
//!    catch-all" (matcher misses structure-only signals) while ReCon
//!    alone produces false positives that need verification.
//! 2. **Leak rule** — with vs without the first-party-HTTPS credential
//!    exemption (how much the paper's §3.2 exemption changes counts).
//! 3. **Filter options** — the EasyList engine with vs without
//!    `$third-party` options honoured.

use appvsweb_adblock::{FilterEngine, RequestInfo};
use appvsweb_analysis::leaks::scan_text;
use appvsweb_bench::repo_root;
use appvsweb_core::study::{train_recon, StudyConfig};
use appvsweb_core::Testbed;
use appvsweb_httpsim::Host;
use appvsweb_netsim::{Os, SimDuration};
use appvsweb_pii::{CombinedDetector, GroundTruthMatcher};
use appvsweb_services::{Catalog, Medium, SessionConfig};
use appvsweb_testkit::BenchRunner;

/// Capture a corpus of (domain, flow-text) pairs from a few sessions.
fn corpus() -> (Vec<(String, String)>, appvsweb_pii::GroundTruth) {
    let catalog = Catalog::paper();
    let cfg = SessionConfig {
        duration: SimDuration::from_mins(1),
        ..Default::default()
    };
    let mut flows = Vec::new();
    let mut truth = None;
    for id in ["weather-channel", "grubhub", "bbc-news"] {
        let spec = catalog.get(id).unwrap();
        let mut tb = Testbed::for_cell(spec, Os::Android, 2016);
        for medium in Medium::BOTH {
            let trace = tb.run_session(spec, Os::Android, medium, &cfg);
            for txn in &trace.transactions {
                flows.push((
                    Host::new(&txn.host).registrable_domain(),
                    scan_text(&txn.request_bytes()),
                ));
            }
        }
        truth = Some(tb.truth.clone());
    }
    (flows, truth.unwrap())
}

fn bench_detection_arms(runner: &mut BenchRunner) {
    let (flows, truth) = corpus();
    let catalog = Catalog::paper();
    let study_cfg = StudyConfig {
        duration: SimDuration::from_mins(1),
        use_recon: true,
        ..Default::default()
    };
    let recon = train_recon(&catalog, &study_cfg);
    let matcher = GroundTruthMatcher::new(&truth);
    let combined = CombinedDetector::new(&truth, Some(recon.clone()));
    let matcher_only = CombinedDetector::new(&truth, None);

    // Report what each arm finds, once.
    let count =
        |f: &dyn Fn(&str, &str) -> usize| -> usize { flows.iter().map(|(d, t)| f(d, t)).sum() };
    let n_matcher = count(&|_d, t| matcher.types_in(t).len());
    let n_recon = count(&|d, t| recon.predict(d, t).len());
    let n_combined = count(&|d, t| combined.scan(d, t).types().len());
    println!(
        "\n== Detection ablation over {} flows ==\n\
         matcher-only detections: {n_matcher}\n\
         recon-only predictions (unverified): {n_recon}\n\
         combined + verified detections: {n_combined}\n",
        flows.len()
    );

    runner.bench("detect_matcher_only", || {
        flows
            .iter()
            .map(|(d, t)| matcher_only.scan(d, t).types().len())
            .sum::<usize>()
    });
    runner.bench("detect_recon_only", || {
        flows
            .iter()
            .map(|(d, t)| recon.predict(d, t).len())
            .sum::<usize>()
    });
    runner.bench("detect_combined", || {
        flows
            .iter()
            .map(|(d, t)| combined.scan(d, t).types().len())
            .sum::<usize>()
    });
}

fn bench_leak_rule(runner: &mut BenchRunner) {
    use appvsweb_adblock::Category;
    use appvsweb_analysis::leaks::is_leak;
    use appvsweb_pii::PiiType;

    // Quantify the §3.2 credential exemption over the full PII × category
    // grid, and bench the rule itself (it sits on the hot path).
    let mut with_exemption = 0;
    let mut without = 0;
    for t in PiiType::ALL {
        for cat in [
            Category::FirstParty,
            Category::Advertising,
            Category::Analytics,
        ] {
            for plaintext in [false, true] {
                if is_leak(t, cat, plaintext) {
                    with_exemption += 1;
                }
                // "Without exemption" counts every transmission.
                without += 1;
            }
        }
    }
    println!(
        "== Leak-rule ablation: {with_exemption}/{without} grid cells are leaks \
         under the paper's rule ==\n"
    );
    runner.bench("leak_rule_grid", || {
        let mut n = 0u32;
        for t in PiiType::ALL {
            for cat in [Category::FirstParty, Category::Advertising] {
                if is_leak(t, cat, false) {
                    n += 1;
                }
            }
        }
        n
    });
}

fn bench_filter_options(runner: &mut BenchRunner) {
    let full = FilterEngine::with_bundled_list();
    // Strip `$third-party` options from the list (ablation arm).
    let stripped: String = appvsweb_adblock::lists::BUNDLED_AA_LIST
        .lines()
        .map(|l| l.replace("$third-party,", "$").replace("$third-party", ""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut no_tp = FilterEngine::new();
    no_tp.load_list(&stripped);

    let urls = [
        ("https://graph.facebook.com/beacon", "weather.com"),
        ("https://www.facebook.com/page", "facebook.com"),
        ("https://res.cloudinary.com/img.png", "stylecart.example"),
        ("https://www.weather.com/today", "weather.com"),
        ("https://z.moatads.com/pixel?x=1", "bbc.co.uk"),
    ];
    let hits = |e: &FilterEngine| {
        urls.iter()
            .filter(|(u, o)| e.is_ad_or_tracking(u, o))
            .count()
    };
    println!(
        "== Filter-option ablation: with $third-party: {} hits; without: {} hits \
         (first-party facebook.com pages stop being exempt) ==\n",
        hits(&full),
        hits(&no_tp)
    );

    runner.bench("adblock_with_options", || {
        urls.iter()
            .filter(|(u, o)| {
                full.check(&RequestInfo {
                    url: u,
                    origin_host: o,
                    resource_type: None,
                })
                .is_blocked()
            })
            .count()
    });
    runner.bench("adblock_without_third_party", || {
        urls.iter()
            .filter(|(u, o)| {
                no_tp
                    .check(&RequestInfo {
                        url: u,
                        origin_host: o,
                        resource_type: None,
                    })
                    .is_blocked()
            })
            .count()
    });
}

fn main() {
    let mut runner = BenchRunner::new("ablations").with_samples(2, 20);
    bench_detection_arms(&mut runner);
    bench_leak_rule(&mut runner);
    bench_filter_options(&mut runner);
    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
