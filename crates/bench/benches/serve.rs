//! Resident-service benches: job throughput through the queue/worker
//! substrate, WAL replay/recovery latency, and the HTTP surface.
//!
//! Emits `BENCH_serve.json` at the repo root. The metadata records the
//! journal geometry (records, bytes) for the standard smoke workload so
//! successive PRs can spot WAL-format growth, plus the admission split
//! under queue pressure.

use appvsweb_bench::repo_root;
use appvsweb_core::CellId;
use appvsweb_netsim::Os;
use appvsweb_serve::{recover, JobSpec, MemWal, QueueConfig, Server};
use appvsweb_services::{Catalog, Medium};
use appvsweb_testkit::BenchRunner;

fn small_spec(name: &str, seed: u64, services: usize) -> JobSpec {
    let catalog = Catalog::paper();
    let cells = catalog
        .testable_on(Os::Android)
        .take(services)
        .flat_map(|s| {
            [
                CellId::new(s.id, Os::Android, Medium::App),
                CellId::new(s.id, Os::Android, Medium::Web),
            ]
        })
        .collect();
    JobSpec {
        name: name.to_string(),
        seed,
        minutes: 1,
        use_recon: false,
        cells,
        ..JobSpec::default()
    }
}

fn run_jobs(workers: usize, jobs: u64) -> Server<MemWal> {
    let mut server = Server::new(MemWal::default(), QueueConfig::default(), workers);
    for seed in 0..jobs {
        // Interleave submit/run so the queue never sheds: this bench
        // measures the execution path, not admission control.
        server.submit(small_spec("bench", seed, 2)).expect("submit");
        server.run_pending().expect("run");
    }
    server
}

fn main() {
    let mut runner = BenchRunner::new("serve").with_samples(1, 3);

    runner.bench("job_2_services_1_worker", || run_jobs(1, 1));
    runner.bench("job_2_services_4_workers", || run_jobs(4, 1));
    runner.bench("four_jobs_4_workers", || run_jobs(4, 4));

    // Recovery latency: replay a prebuilt journal (the 4-job workload)
    // from scratch. This is the crash-restart path users actually wait
    // on, so it gets its own series.
    let golden = run_jobs(4, 4);
    let wal = golden.sink().text.clone();
    runner.meta("wal_records_4_jobs", wal.lines().count() as u64);
    runner.meta("wal_bytes_4_jobs", wal.len() as u64);
    runner.meta("revisions_4_jobs", golden.state.revisions.len() as u64);
    runner.bench("recover_4_job_wal", || {
        recover(&wal, None).expect("recover")
    });

    // Admission split under pressure: submit 8 jobs with no drain and
    // record how many were admitted / shed / rejected.
    let mut pressured = Server::new(MemWal::default(), QueueConfig::default(), 1);
    for seed in 0..8 {
        pressured
            .submit(small_spec("pressure", seed, 1))
            .expect("submit");
    }
    let shed = pressured
        .state
        .jobs
        .iter()
        .filter(|j| j.shed_stride > 1)
        .count();
    let rejected = pressured
        .state
        .jobs
        .iter()
        .filter(|j| j.status == appvsweb_serve::JobStatus::Rejected)
        .count();
    runner.meta("pressure_shed_of_8", shed as u64);
    runner.meta("pressure_rejected_of_8", rejected as u64);

    // The HTTP surface: request parse + route + render on a status hit.
    let mut http_server = run_jobs(1, 1);
    let request = b"GET /status HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
    runner.bench("http_status_roundtrip", || {
        appvsweb_serve::http::handle(&mut http_server, request)
    });

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
