//! End-to-end pipeline benches: single cells and the full campaign.

use appvsweb_bench::quick_config;
use appvsweb_core::study::{run_cell, run_study};
use appvsweb_netsim::Os;
use appvsweb_services::{Catalog, Medium};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One app cell and one web cell (capture + detection + classification).
fn bench_cells(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let cfg = quick_config();
    let weather = catalog.get("weather-channel").unwrap();
    c.bench_function("cell_app_weather_1min", |b| {
        b.iter(|| black_box(run_cell(weather, Os::Android, Medium::App, &cfg, None)))
    });
    c.bench_function("cell_web_weather_1min", |b| {
        b.iter(|| black_box(run_cell(weather, Os::Android, Medium::Web, &cfg, None)))
    });
    let bbc = catalog.get("bbc-news").unwrap();
    c.bench_function("cell_web_bbc_heavy_1min", |b| {
        b.iter(|| black_box(run_cell(bbc, Os::Ios, Medium::Web, &cfg, None)))
    });
}

/// The full 196-cell campaign at 1 simulated minute per session.
fn bench_full_study(c: &mut Criterion) {
    let cfg = quick_config();
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("full_campaign_1min_sessions", |b| {
        b.iter(|| black_box(run_study(black_box(&cfg))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cells, bench_full_study
}
criterion_main!(benches);
