//! End-to-end pipeline benches: single cells and the full campaign.
//!
//! Emits `BENCH_pipeline.json` at the repo root with median/p95 ns per
//! stage, so PRs can diff the perf trajectory of the whole pipeline.
//!
//! With `BENCH_GATE=1` in the environment (ci.sh sets it), the run
//! doubles as a perf-regression gate: the freshly measured
//! `full_campaign_1min_sessions` median is compared against the
//! committed artifact *before* it is overwritten, and a regression of
//! more than 25% fails the process.

use appvsweb_bench::{committed_median_ns, quick_config, repo_root};
use appvsweb_core::study::{run_cell, run_study};
use appvsweb_netsim::Os;
use appvsweb_services::{Catalog, Medium};
use appvsweb_testkit::BenchRunner;

fn main() {
    let catalog = Catalog::paper();
    let cfg = quick_config();
    let mut runner = BenchRunner::new("pipeline").with_samples(1, 10);

    // One app cell and one web cell (capture + detection + classification).
    let weather = catalog.get("weather-channel").unwrap();
    runner.bench("cell_app_weather_1min", || {
        run_cell(weather, Os::Android, Medium::App, &cfg, None)
    });
    runner.bench("cell_web_weather_1min", || {
        run_cell(weather, Os::Android, Medium::Web, &cfg, None)
    });
    let bbc = catalog.get("bbc-news").unwrap();
    runner.bench("cell_web_bbc_heavy_1min", || {
        run_cell(bbc, Os::Ios, Medium::Web, &cfg, None)
    });

    // The full 196-cell campaign at 1 simulated minute per session.
    const CAMPAIGN: &str = "full_campaign_1min_sessions";
    let baseline = committed_median_ns(&repo_root().join("BENCH_pipeline.json"), CAMPAIGN);
    runner.bench(CAMPAIGN, || run_study(&cfg));

    let fresh = runner
        .results()
        .iter()
        .find(|r| r.name == CAMPAIGN)
        .map(|r| r.median_ns);
    runner
        .write_json(&repo_root())
        .expect("write bench artifact");

    if std::env::var_os("BENCH_GATE").is_some() {
        match (baseline, fresh) {
            (Some(base), Some(now)) if now > base * 1.25 => {
                eprintln!(
                    "BENCH GATE: {CAMPAIGN} median regressed {:.1}% \
                     ({:.1}ms -> {:.1}ms, threshold 25%)",
                    (now / base - 1.0) * 100.0,
                    base / 1e6,
                    now / 1e6,
                );
                std::process::exit(1);
            }
            (Some(base), Some(now)) => {
                eprintln!(
                    "BENCH GATE: {CAMPAIGN} median {:.1}ms vs committed {:.1}ms — ok",
                    now / 1e6,
                    base / 1e6,
                );
            }
            _ => eprintln!("BENCH GATE: no committed baseline for {CAMPAIGN}; skipping"),
        }
    }
}
