//! End-to-end pipeline benches: single cells and the full campaign.
//!
//! Emits `BENCH_pipeline.json` at the repo root with median/p95 ns per
//! stage, so PRs can diff the perf trajectory of the whole pipeline.

use appvsweb_bench::{quick_config, repo_root};
use appvsweb_core::study::{run_cell, run_study};
use appvsweb_netsim::Os;
use appvsweb_services::{Catalog, Medium};
use appvsweb_testkit::BenchRunner;

fn main() {
    let catalog = Catalog::paper();
    let cfg = quick_config();
    let mut runner = BenchRunner::new("pipeline").with_samples(1, 10);

    // One app cell and one web cell (capture + detection + classification).
    let weather = catalog.get("weather-channel").unwrap();
    runner.bench("cell_app_weather_1min", || {
        run_cell(weather, Os::Android, Medium::App, &cfg, None)
    });
    runner.bench("cell_web_weather_1min", || {
        run_cell(weather, Os::Android, Medium::Web, &cfg, None)
    });
    let bbc = catalog.get("bbc-news").unwrap();
    runner.bench("cell_web_bbc_heavy_1min", || {
        run_cell(bbc, Os::Ios, Medium::Web, &cfg, None)
    });

    // The full 196-cell campaign at 1 simulated minute per session.
    runner.bench("full_campaign_1min_sessions", || run_study(&cfg));

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
