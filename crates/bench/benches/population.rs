//! Population-campaign benches: 10k / 100k / 1M users over one
//! measured quick study.
//!
//! Emits `BENCH_population.json` at the repo root. The metadata records
//! the peak shard-state footprint at each scale — the constant-memory
//! witness: the bytes must not grow with the user count.

use appvsweb_bench::{quick_config, repo_root};
use appvsweb_core::study::run_study;
use appvsweb_population::{run_campaign_on, CampaignConfig};
use appvsweb_testkit::BenchRunner;

fn main() {
    let study = run_study(&quick_config());
    let mut runner = BenchRunner::new("population").with_samples(1, 5);

    let cfg = |users: u64| CampaignConfig {
        users,
        ..CampaignConfig::default()
    };
    for (name, users) in [
        ("campaign_10k_users", 10_000u64),
        ("campaign_100k_users", 100_000),
        ("campaign_1m_users", 1_000_000),
    ] {
        let cfg = cfg(users);
        let report = run_campaign_on(&study, &cfg);
        runner.meta(
            &format!("peak_state_bytes_{users}_users"),
            report.peak_state_bytes,
        );
        runner.bench(name, || run_campaign_on(&study, &cfg));
    }
    // One extra scale, meta-only: from 1M to 2M users the footprint
    // must be flat — the sketches have saturated the fixed cell/org
    // universe, the structural bound that makes memory independent of
    // user count.
    let saturated = run_campaign_on(&study, &cfg(2_000_000));
    runner.meta("peak_state_bytes_2000000_users", saturated.peak_state_bytes);

    let base = cfg(10_000);
    runner.meta("shards", base.shards);
    runner.meta("workers", base.workers as u64);
    runner.bench("campaign_10k_users_1_worker", || {
        run_campaign_on(
            &study,
            &CampaignConfig {
                workers: 1,
                ..base.clone()
            },
        )
    });

    runner
        .write_json(&repo_root())
        .expect("write bench artifact");
}
