#!/bin/sh
# Tier-1 gate, runnable fully offline: every dependency is an in-repo
# crate, so a fresh checkout needs nothing beyond the Rust toolchain.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy --no-default-features (obs compiled out) =="
cargo clippy -p appvsweb -p appvsweb-bench --all-targets --no-default-features -- -D warnings

echo "== appvsweb-lint --check (determinism & robustness vs lint.baseline.json) =="
rm -rf target/lint-cache
cargo run -q --release -p appvsweb-lint -- --check

echo "== appvsweb-lint cache gate (warm cached re-run must be finding-identical) =="
rm -rf target/lint-cache
cargo run -q --release -p appvsweb-lint -- --json > target/lint-cold.json
cargo run -q --release -p appvsweb-lint -- --json > target/lint-warm.json
cmp target/lint-cold.json target/lint-warm.json
cargo run -q --release -p appvsweb-lint -- --json --no-cache --workers 4 > target/lint-nocache.json
cmp target/lint-cold.json target/lint-nocache.json
rm -f target/lint-cold.json target/lint-warm.json target/lint-nocache.json

echo "== lint bench (emits BENCH_lint.json: scan size, tokens/sec, findings by rule) =="
cargo bench -q -p appvsweb-bench --bench lint

echo "== pipeline bench + perf gate (full-campaign median >25% over committed fails) =="
BENCH_GATE=1 cargo bench -q -p appvsweb-bench --bench study_pipeline

echo "== repro fuzz --smoke (corpus replay + short mutation burst; emits BENCH_testkit.json) =="
cargo run -q --release -p appvsweb-bench --bin repro -- fuzz --smoke

echo "== repro metrics --check (obs conservation laws over the quick campaign) =="
cargo run -q --release -p appvsweb-bench --bin repro -- metrics --check

echo "== repro population --smoke (1k-user campaign determinism gate) =="
cargo run -q --release -p appvsweb-bench --bin repro -- population --smoke

echo "== repro serve --smoke (submit -> crash -> recover -> diff, 1/2/8-worker determinism) =="
cargo run -q --release -p appvsweb-bench --bin repro -- serve --smoke

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q (includes tests/chaos.rs fault-injection suite) =="
cargo test -q --workspace
