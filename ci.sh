#!/bin/sh
# Tier-1 gate, runnable fully offline: every dependency is an in-repo
# crate, so a fresh checkout needs nothing beyond the Rust toolchain.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q (includes tests/chaos.rs fault-injection suite) =="
cargo test -q --workspace
