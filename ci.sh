#!/bin/sh
# Tier-1 gate, runnable fully offline: every dependency is an in-repo
# crate, so a fresh checkout needs nothing beyond the Rust toolchain.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace
