//! # appvsweb
//!
//! Umbrella crate for the `appvsweb` workspace: a complete, from-scratch
//! Rust reproduction of *"Should You Use the App for That? Comparing the
//! Privacy Implications of App- and Web-based Online Services"*
//! (Leung, Ren, Choffnes, Wilson — ACM IMC 2016).
//!
//! Every subsystem the paper's methodology depends on is re-exported
//! here under a short alias:
//!
//! * [`netsim`] — deterministic event-driven network substrate (clock,
//!   RNG, DNS, TCP accounting, device model)
//! * [`httpsim`] — HTTP/1.1, codecs, cookies, browser cache, gzip/DEFLATE
//! * [`tlssim`] — certificates, trust, pinning, handshakes
//! * [`mitm`] — the Meddle VPN + mitmproxy-style interception testbed
//! * [`adblock`] — EasyList-syntax engine + A&A categorization
//! * [`pii`] — ground truth, encoder zoo, Aho–Corasick matcher,
//!   ReCon-style ML detector, combined pipeline, accuracy evaluation
//! * [`services`] — the calibrated 50-service synthetic world
//! * [`analysis`] — leak rules, Tables 1–3, Figures 1a–1f, reports
//! * [`recommend`] — the preference-based app-vs-web recommender
//! * [`core`] — the full study driver and dataset export
//! * [`population`] — population-scale campaigns: deterministic user
//!   models, mergeable sketch aggregation, and the fixed reduction tree
//! * [`serve`] — the supervised resident service: crash-recoverable
//!   queue/worker campaign execution, WAL-checkpointed revision store,
//!   drift alarms, and a std-only HTTP surface
//! * [`json`] — zero-dependency JSON value type, parser, serializer,
//!   and the `impl_json!` derive-style macro
//! * [`obs`] — deterministic tracing and metrics over the whole
//!   pipeline (span journals, counters, conservation-law checks)
//!
//! Start with `examples/quickstart.rs`, or run the whole campaign:
//!
//! ```bash
//! cargo run --release -p appvsweb-bench --bin repro -- --all
//! ```
pub use appvsweb_adblock as adblock;
pub use appvsweb_analysis as analysis;
pub use appvsweb_core as core;
pub use appvsweb_httpsim as httpsim;
pub use appvsweb_json as json;
pub use appvsweb_mitm as mitm;
pub use appvsweb_netsim as netsim;
pub use appvsweb_obs as obs;
pub use appvsweb_pii as pii;
pub use appvsweb_population as population;
pub use appvsweb_recommend as recommend;
pub use appvsweb_serve as serve;
pub use appvsweb_services as services;
pub use appvsweb_tlssim as tlssim;
